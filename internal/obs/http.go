package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler wires the observability endpoints onto one mux:
//
//	/metrics        Prometheus text format (the scrape target)
//	/metrics.json   JSON snapshot (Content-Type: application/json)
//	/debug/pprof/*  the standard runtime profiles
//
// and a 404 everywhere else. extra, if non-nil, is merged into the JSON
// snapshot under its own keys at request time (the server snapshot rides
// along here), sampled per request.
func Handler(reg *Registry, extra func() map[string]any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w) //nolint:errcheck — best-effort scrape
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := reg.SnapshotJSON()
		if extra != nil {
			for k, v := range extra() {
				body[k] = v
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) //nolint:errcheck — best-effort metrics
	})
	// net/http/pprof registers on DefaultServeMux at import; wiring the
	// handlers explicitly keeps this mux self-contained (and the index page
	// routes the named profiles itself).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	return mux
}

// LogEvery writes one structured progress line (a single-line JSON object of
// every counter, gauge, and histogram headline in reg, plus a timestamp) to
// w every interval, until ctx ends. It blocks; run it in a goroutine. A
// non-positive interval returns immediately.
func LogEvery(ctx context.Context, w io.Writer, interval time.Duration, reg *Registry) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			writeLogLine(w, now, reg)
		}
	}
}

// writeLogLine emits one compact progress record.
func writeLogLine(w io.Writer, now time.Time, reg *Registry) {
	line := map[string]any{"ts": now.UTC().Format(time.RFC3339Nano)}
	for _, e := range reg.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			line[e.name] = e.counter.Load()
		case kindGauge:
			line[e.name] = e.gauge.Load()
		case kindFunc:
			line[e.name] = e.fn()
		case kindHistogram:
			v := e.hist.View()
			line[e.name] = map[string]any{
				"count": v.Count,
				"p50_s": v.P50.Seconds(),
				"p99_s": v.P99.Seconds(),
				"max_s": v.Max.Seconds(),
			}
		}
	}
	enc := json.NewEncoder(w) // Encode appends the newline
	enc.Encode(line)          //nolint:errcheck — best-effort logging
}
