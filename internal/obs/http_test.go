package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"extremenc/internal/obs/trace"
)

func TestHandlerRoutesAndHeaders(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.hits", "test counter").Add(3)
	h := Handler(reg, nil)

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{http.MethodGet, "/metrics", http.StatusOK},
		{http.MethodHead, "/metrics", http.StatusOK},
		{http.MethodGet, "/metrics.json", http.StatusOK},
		{http.MethodGet, "/debug/flight", http.StatusOK},
		{http.MethodGet, "/nope", http.StatusNotFound},
		{http.MethodPost, "/metrics", http.StatusMethodNotAllowed},
		{http.MethodPut, "/metrics.json", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/debug/flight", http.StatusMethodNotAllowed},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, rec.Code, tc.status)
		}
		if got := rec.Header().Get("X-Content-Type-Options"); got != "nosniff" {
			t.Errorf("%s %s: X-Content-Type-Options = %q, want nosniff", tc.method, tc.path, got)
		}
	}
}

func TestHandlerMethodNotAllowedSetsAllow(t *testing.T) {
	h := Handler(NewRegistry(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("Allow = %q, want \"GET, HEAD\"", allow)
	}
}

func TestHandlerFlightRoute(t *testing.T) {
	r := trace.Enable(64)
	defer trace.Disable()
	trace.Emit(trace.KindBrownout, "origin", "paced", -1, 1)
	_ = r

	h := Handler(NewRegistry(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc trace.DumpDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	if !doc.Enabled || len(doc.Events) != 1 || doc.Events[0].Kind != trace.KindBrownout {
		t.Fatalf("unexpected dump: %+v", doc)
	}
}
