// Package obs is the repository's unified observability core: a
// dependency-free, lock-free metrics layer shared by every serving surface.
// It has three pieces:
//
//   - A Registry of named metrics — atomic Counters, Gauges, and fixed-bucket
//     log-scale latency Histograms with p50/p95/p99/max extraction — that the
//     session server, the resilient fetcher, the chaos link, and the modeled
//     stream server all register into, so one scrape shows the whole system
//     in one vocabulary.
//
//   - A stage-timing span API (Start / StageOf) whose disabled path is free:
//     when no sink registry is installed, starting a span reads one atomic
//     pointer, touches no clock, and allocates nothing, so the hot codec
//     paths stay instrumented permanently. The paper's methodology is
//     per-stage measurement (every kernel rung in Table-based-0…5 is a
//     number); spans make the production pipeline report the same
//     distributions continuously instead of only under a benchmark.
//
//   - An exposition layer: Prometheus text format (WriteText), a JSON
//     snapshot (SnapshotJSON), an http.Handler wiring /metrics,
//     /metrics.json and /debug/pprof/*, and a periodic structured progress
//     logger (LogEvery).
//
// Metric values are standalone and zero-value usable; registration attaches
// a name for exposition but never changes how increments behave. That keeps
// existing typed views (netio.CounterView, faultnet.CounterView, FetchStats)
// as thin reads over the same storage the registry exposes.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// sink is the process-global registry that stage spans record into. Nil (the
// default) disables every span: Start returns an inert Span without reading
// the clock.
var sink atomic.Pointer[Registry]

// stages is the process-global stage table, name → *Stage. Stages exist
// independently of any sink so hot paths can hold a *Stage in a package-level
// var; installing a sink resolves each stage to a histogram in it.
var stages sync.Map

// SetSink installs reg as the process-global span sink, resolving every
// known stage to a histogram in reg (created on demand). A nil reg disables
// spans again. Safe for concurrent use with running spans: spans already
// started keep recording into the histogram they resolved at start.
func SetSink(reg *Registry) {
	sink.Store(reg)
	stages.Range(func(_, v any) bool {
		v.(*Stage).resolve(reg)
		return true
	})
}

// Sink returns the installed span sink registry, or nil when spans are
// disabled.
func Sink() *Registry { return sink.Load() }

// Stage is a named timing stage — one histogram of span durations. Hot paths
// resolve a stage once into a package-level var and call Start per
// operation; the per-call cost with no sink installed is a single atomic
// pointer load.
type Stage struct {
	name string
	h    atomic.Pointer[Histogram]
}

// StageOf returns the process-global stage for name, creating it if needed.
// If a sink is already installed, the new stage is resolved into it
// immediately.
func StageOf(name string) *Stage {
	if v, ok := stages.Load(name); ok {
		return v.(*Stage)
	}
	s := &Stage{name: name}
	if v, loaded := stages.LoadOrStore(name, s); loaded {
		return v.(*Stage)
	}
	s.resolve(sink.Load())
	return s
}

// resolve points the stage at its histogram in reg (nil reg detaches it).
func (s *Stage) resolve(reg *Registry) {
	if reg == nil {
		s.h.Store(nil)
		return
	}
	s.h.Store(reg.Histogram(s.name, "span latency for stage "+s.name))
}

// Name returns the stage name.
func (s *Stage) Name() string { return s.name }

// Start begins one span of the stage. With no sink installed it returns an
// inert Span without touching the clock; End on an inert Span is a no-op.
// Both paths are allocation-free:
//
//	defer stage.Start().End()
func (s *Stage) Start() Span {
	h := s.h.Load()
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// Span is one in-flight stage timing. The zero value is inert.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the span's elapsed time into its stage histogram. Inert spans
// (no sink at Start) do nothing. End may be called at most once per span.
func (sp Span) End() {
	if sp.h != nil {
		sp.h.Observe(time.Since(sp.t0))
	}
}

// EndTraced records the span's elapsed time like End and additionally
// offers the observation as an exemplar candidate, linking it to a trace
// and span ID from the obs/trace subsystem. Inert spans do nothing; with
// exemplar capture disabled on the stage histogram it behaves as End.
func (sp Span) EndTraced(traceID, spanID uint64) {
	if sp.h != nil {
		sp.h.ObserveTraced(time.Since(sp.t0), traceID, spanID)
	}
}

// Active reports whether the span is recording (a sink was installed when it
// started).
func (sp Span) Active() bool { return sp.h != nil }

// Start is the convenience span form: it begins a span of the named stage
// and returns the function that ends it.
//
//	defer obs.Start("rlnc.absorb")()
//
// When no sink is installed it returns a shared no-op function without
// reading the clock or allocating; with a sink installed the returned
// closure costs one allocation, so hot paths should prefer a package-level
// StageOf handle with Start/End.
func Start(name string) func() {
	if sink.Load() == nil {
		return noopEnd
	}
	sp := StageOf(name).Start()
	return sp.End
}

var noopEnd = func() {}
