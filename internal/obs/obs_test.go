package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanDisabledIsFree pins the disabled-path contract: with no sink
// installed, starting and ending a span performs zero allocations and
// records nothing anywhere.
func TestSpanDisabledIsFree(t *testing.T) {
	SetSink(nil)
	st := StageOf("test.disabled_stage")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := st.Start()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
	if st.Start().Active() {
		t.Fatal("span active with no sink installed")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		Start("test.disabled_stage")()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start path allocates %v per op, want 0", allocs)
	}
}

// TestSpanEnabledRecords checks that installing a sink makes both span forms
// record into the registry, and removing it stops them again.
func TestSpanEnabledRecords(t *testing.T) {
	reg := NewRegistry()
	SetSink(reg)
	defer SetSink(nil)

	st := StageOf("test.enabled_stage")
	sp := st.Start()
	if !sp.Active() {
		t.Fatal("span inert with a sink installed")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	Start("test.enabled_stage")()

	v, ok := reg.HistogramView("test.enabled_stage")
	if !ok {
		t.Fatal("stage histogram not in sink registry")
	}
	if v.Count != 2 {
		t.Fatalf("stage recorded %d spans, want 2", v.Count)
	}
	if v.Max < time.Millisecond {
		t.Fatalf("stage max %v, want ≥ 1ms", v.Max)
	}

	SetSink(nil)
	st.Start().End()
	if v, _ := reg.HistogramView("test.enabled_stage"); v.Count != 2 {
		t.Fatalf("span recorded after sink removal: count %d", v.Count)
	}
}

// TestStageOfIdempotent checks the global stage table and late binding: a
// stage created before the sink resolves when the sink arrives.
func TestStageOfIdempotent(t *testing.T) {
	SetSink(nil)
	a := StageOf("test.idem")
	if b := StageOf("test.idem"); a != b {
		t.Fatal("StageOf returned distinct stages for one name")
	}
	reg := NewRegistry()
	SetSink(reg)
	defer SetSink(nil)
	a.Start().End()
	if v, ok := reg.HistogramView("test.idem"); !ok || v.Count != 1 {
		t.Fatalf("pre-existing stage did not bind to new sink (ok=%v count=%d)", ok, v.Count)
	}
}

// TestRegistryGetOrCreateAndRegister covers the two registration modes:
// get-or-create by name, and attaching caller-owned metric values.
func TestRegistryGetOrCreateAndRegister(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count", "help a")
	if c2 := reg.Counter("a.count", ""); c2 != c {
		t.Fatal("Counter get-or-create returned a different instance")
	}
	c.Add(3)
	if v, ok := reg.CounterValue("a.count"); !ok || v != 3 {
		t.Fatalf("CounterValue = %d,%v want 3,true", v, ok)
	}

	var mine Counter
	if err := reg.RegisterCounter("b.count", "mine", &mine); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterCounter("b.count", "dup", &mine); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	mine.Inc()
	if v, _ := reg.CounterValue("b.count"); v != 1 {
		t.Fatalf("registered counter reads %d, want 1", v)
	}

	g := reg.Gauge("g.val", "")
	g.Set(7)
	g.SetMax(5)
	if g.Load() != 7 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Load())
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", g.Load())
	}

	if err := reg.RegisterFunc("f.val", "", func() float64 { return 2.5 }); err != nil {
		t.Fatal(err)
	}
	names := strings.Join(reg.Names(), ",")
	for _, want := range []string{"a.count", "b.count", "g.val", "f.val"} {
		if !strings.Contains(names, want) {
			t.Fatalf("Names() = %s missing %s", names, want)
		}
	}
}

// TestRegistryKindMismatch pins the never-nil contract on kind collisions.
func TestRegistryKindMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	if g := reg.Gauge("x", ""); g == nil {
		t.Fatal("kind-mismatched Gauge returned nil")
	}
	if h := reg.Histogram("x", ""); h == nil {
		t.Fatal("kind-mismatched Histogram returned nil")
	}
	if _, ok := reg.HistogramView("x"); ok {
		t.Fatal("HistogramView found a counter")
	}
}

// TestRegistryConcurrentUse races creation, increments, and scrapes.
func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"c.one", "c.two", "c.three"}
			for i := 0; i < 500; i++ {
				reg.Counter(names[i%len(names)], "").Inc()
				reg.Histogram("h.lat", "").Observe(time.Microsecond)
				if i%100 == 0 {
					var sb strings.Builder
					if err := reg.WriteText(&sb); err != nil {
						panic(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, n := range []string{"c.one", "c.two", "c.three"} {
		v, ok := reg.CounterValue(n)
		if !ok {
			t.Fatalf("counter %s missing", n)
		}
		total += v
	}
	if total != 8*500 {
		t.Fatalf("counter total %d, want %d", total, 8*500)
	}
	if v, _ := reg.HistogramView("h.lat"); v.Count != 8*500 {
		t.Fatalf("histogram count %d, want %d", v.Count, 8*500)
	}
}
