package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4). Durations are exposed
// in seconds, the Prometheus base unit; histogram buckets are cumulative
// with the standard le label and a +Inf terminal bucket.

// promName maps a dotted registry name to a valid Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText writes the registry in Prometheus text format. Metrics appear in
// registration order; each value is read atomically but the exposition as a
// whole is not a consistent cut (standard for lock-free collectors).
func (r *Registry) WriteText(w io.Writer) error {
	for _, e := range r.snapshotEntries() {
		name := promName(e.name)
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(e.help)); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, e.counter.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, e.gauge.Load())
		case kindFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(e.fn()))
		case kindHistogram:
			err = writeTextHistogram(w, name, e.hist.View())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeTextHistogram(w io.Writer, name string, v HistogramView) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, n := range v.Buckets {
		cum += n
		le := "+Inf"
		if b := v.BucketBounds[i]; b >= 0 {
			le = formatFloat(b.Seconds())
		}
		// Empty leading buckets are skipped to keep expositions readable;
		// cumulative counts stay exact because cum accumulates regardless.
		if n == 0 && i < len(v.Buckets)-1 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, formatFloat(v.Sum.Seconds()), name, cum)
	return err
}

// SnapshotJSON renders the registry as a JSON-encodable map: counters and
// gauges by name, histograms as {count, sum_s, p50_s, p95_s, p99_s, max_s}.
// This is the registry half of the /metrics.json endpoint.
func (r *Registry) SnapshotJSON() map[string]any {
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]map[string]any{}
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			counters[e.name] = e.counter.Load()
		case kindGauge:
			gauges[e.name] = float64(e.gauge.Load())
		case kindFunc:
			gauges[e.name] = e.fn()
		case kindHistogram:
			v := e.hist.View()
			hv := map[string]any{
				"count": v.Count,
				"sum_s": v.Sum.Seconds(),
				"p50_s": v.P50.Seconds(),
				"p95_s": v.P95.Seconds(),
				"p99_s": v.P99.Seconds(),
				"max_s": v.Max.Seconds(),
			}
			if ex, ok := e.hist.Exemplar(); ok {
				hv["exemplar"] = map[string]any{
					"trace":   ex.TraceID,
					"span":    ex.SpanID,
					"value_s": ex.Value.Seconds(),
				}
			}
			hists[e.name] = hv
		}
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}
