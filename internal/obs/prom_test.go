package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry populates one of every metric kind.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("net.blocks_sent", "blocks fully written").Add(42)
	reg.Gauge("net.queue_len", "live queue depth").Set(7)
	reg.RegisterFunc("net.session_seconds", "summed session time", func() float64 { return 1.5 })
	h := reg.Histogram("rlnc.encode_batch", "encode batch latency")
	h.Observe(300 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	return reg
}

// TestWriteTextRoundTrip checks the exposition through the in-repo parser:
// every emitted sample parses, the values survive, and the histogram's
// cumulative buckets are monotone and end at the count.
func TestWriteTextRoundTrip(t *testing.T) {
	reg := buildTestRegistry()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["net_blocks_sent"] != 42 {
		t.Fatalf("net_blocks_sent = %v, want 42", byKey["net_blocks_sent"])
	}
	if byKey["net_queue_len"] != 7 {
		t.Fatalf("net_queue_len = %v, want 7", byKey["net_queue_len"])
	}
	if byKey["net_session_seconds"] != 1.5 {
		t.Fatalf("net_session_seconds = %v, want 1.5", byKey["net_session_seconds"])
	}
	if byKey["rlnc_encode_batch_count"] != 3 {
		t.Fatalf("histogram count = %v, want 3", byKey["rlnc_encode_batch_count"])
	}
	if byKey[`rlnc_encode_batch_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", byKey[`rlnc_encode_batch_bucket{le="+Inf"}`])
	}
	// Cumulative monotonicity across the emitted buckets, in order.
	var prev float64 = -1
	seen := 0
	for _, s := range samples {
		if s.Name != "rlnc_encode_batch_bucket" {
			continue
		}
		seen++
		if s.Value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}
	if seen < 3 {
		t.Fatalf("only %d buckets emitted for a 3-sample histogram", seen)
	}
	if !strings.Contains(text, "# TYPE rlnc_encode_batch histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", text)
	}
}

// TestParseTextRejectsGarbage pins the parser's error behavior.
func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		"name{unterminated=\"x\" 3\n",
		"name{a=b} 3\n",
		"name 3 4 5\n",
		"name notafloat\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
	good := "# a comment\n\nok_metric{a=\"x,y\",b=\"q\\\"z\"} 3.5 1700000000\n"
	samples, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseText rejected valid input: %v", err)
	}
	if len(samples) != 1 || samples[0].Labels["a"] != "x,y" || samples[0].Labels["b"] != `q"z` {
		t.Fatalf("parsed %+v", samples)
	}
}

// TestSnapshotJSONShape checks the JSON snapshot carries every kind with the
// documented keys.
func TestSnapshotJSONShape(t *testing.T) {
	reg := buildTestRegistry()
	raw, err := json.Marshal(reg.SnapshotJSON())
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64              `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["net.blocks_sent"] != 42 {
		t.Fatalf("counters = %v", got.Counters)
	}
	if got.Gauges["net.queue_len"] != 7 || got.Gauges["net.session_seconds"] != 1.5 {
		t.Fatalf("gauges = %v", got.Gauges)
	}
	h := got.Histograms["rlnc.encode_batch"]
	if h["count"] != 3 || h["p50_s"] <= 0 || h["p99_s"] < h["p50_s"] || h["max_s"] <= 0 {
		t.Fatalf("histogram snapshot = %v", h)
	}
}

// TestHandlerRouting pins the endpoint contract: Prometheus text on
// /metrics, JSON with the right Content-Type on /metrics.json, pprof at
// /debug/pprof/, and 404 anywhere else.
func TestHandlerRouting(t *testing.T) {
	reg := buildTestRegistry()
	h := Handler(reg, func() map[string]any {
		return map[string]any{"server": map[string]any{"sessions": 3}}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	if _, err := ParseText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}

	resp, body = get("/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json Content-Type %q, want application/json", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if _, ok := doc["server"]; !ok {
		t.Fatalf("extra snapshot block missing from /metrics.json: %v", doc)
	}
	if _, ok := doc["counters"]; !ok {
		t.Fatalf("registry block missing from /metrics.json: %v", doc)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	for _, path := range []string{"/", "/metricsx", "/metrics/extra", "/favicon.ico"} {
		if resp, _ := get(path); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestLogEveryLine checks the structured progress line shape directly.
func TestLogEveryLine(t *testing.T) {
	reg := buildTestRegistry()
	var sb strings.Builder
	writeLogLine(&sb, time.Unix(1700000000, 0), reg)
	line := sb.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("progress record is not a single line: %q", line)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("progress line not JSON: %v", err)
	}
	if doc["ts"] == "" || doc["net.blocks_sent"] != float64(42) {
		t.Fatalf("progress line = %v", doc)
	}
	if _, ok := doc["rlnc.encode_batch"].(map[string]any); !ok {
		t.Fatalf("histogram headline missing: %v", doc)
	}
}
