package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Minimal Prometheus text-format parser — just enough to validate our own
// exposition in the metrics smoke gate without an external dependency. It
// accepts the subset WriteText emits (plus label sets in any order): comment
// lines, blank lines, and sample lines of the form
//
//	name[{label="value",...}] value [timestamp]
//
// and rejects anything else.

// TextSample is one parsed sample line.
type TextSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample identity as name{k="v",...} with sorted labels.
func (s TextSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses a Prometheus text-format exposition, returning every
// sample in order. A malformed line fails the whole parse with its line
// number.
func ParseText(r io.Reader) ([]TextSample, error) {
	var out []TextSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: text format line %d: %w", lineno, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseSampleLine(line string) (TextSample, error) {
	var s TextSample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp], got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validMetricName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest := strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value: %q", rest)
		}
		val, tail, err := unquoteLabel(rest)
		if err != nil {
			return nil, err
		}
		labels[name] = val
		body = strings.TrimPrefix(strings.TrimSpace(tail), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// unquoteLabel consumes a leading double-quoted string with \", \\ and \n
// escapes, returning the value and the unconsumed tail.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value: %q", s)
}
