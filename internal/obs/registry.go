package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; registration only attaches a name for exposition.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value — a running
// maximum, safe under concurrent SetMax.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// metricKind discriminates the entries of a Registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFunc
)

// metricEntry is one named metric. Exactly one of the value fields is set,
// per kind.
type metricEntry struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // kindFunc: sampled at exposition time
}

// Registry is a named-metric table. Reads and increments of the metrics it
// holds are lock-free; the registry mutex guards only registration and
// enumeration (scrapes). Metric names use a dotted vocabulary
// ("netio.blocks_sent"); the Prometheus exposition maps dots to underscores.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metricEntry
	ordered []*metricEntry // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metricEntry)}
}

// errRegistered shapes the duplicate-name error.
func errRegistered(name string) error {
	return fmt.Errorf("obs: metric %q already registered", name)
}

// add registers e, failing on a name collision.
func (r *Registry) add(e *metricEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.name]; dup {
		return errRegistered(e.name)
	}
	r.byName[e.name] = e
	r.ordered = append(r.ordered, e)
	return nil
}

// Counter returns the named counter, creating and registering a fresh one on
// first use. If the name is registered as a different kind, a fresh
// unregistered counter is returned so callers never receive nil.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		r.mu.Unlock()
		if e.kind == kindCounter {
			return e.counter
		}
		return new(Counter)
	}
	e := &metricEntry{name: name, help: help, kind: kindCounter, counter: new(Counter)}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	r.mu.Unlock()
	return e.counter
}

// Gauge returns the named gauge, creating and registering a fresh one on
// first use (same collision behavior as Counter).
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		r.mu.Unlock()
		if e.kind == kindGauge {
			return e.gauge
		}
		return new(Gauge)
	}
	e := &metricEntry{name: name, help: help, kind: kindGauge, gauge: new(Gauge)}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	r.mu.Unlock()
	return e.gauge
}

// Histogram returns the named latency histogram, creating and registering a
// fresh one on first use (same collision behavior as Counter).
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		r.mu.Unlock()
		if e.kind == kindHistogram {
			return e.hist
		}
		return new(Histogram)
	}
	e := &metricEntry{name: name, help: help, kind: kindHistogram, hist: new(Histogram)}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	r.mu.Unlock()
	return e.hist
}

// RegisterCounter attaches an existing counter (typically a field of a typed
// counter block like netio.Counters) under name. The counter keeps working
// unregistered; registration only adds it to the exposition.
func (r *Registry) RegisterCounter(name, help string, c *Counter) error {
	return r.add(&metricEntry{name: name, help: help, kind: kindCounter, counter: c})
}

// RegisterGauge attaches an existing gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) error {
	return r.add(&metricEntry{name: name, help: help, kind: kindGauge, gauge: g})
}

// RegisterHistogram attaches an existing histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) error {
	return r.add(&metricEntry{name: name, help: help, kind: kindHistogram, hist: h})
}

// RegisterFunc attaches a float gauge sampled by fn at every exposition —
// the bridge for derived values (live session count, summed seconds) that
// already have an owner.
func (r *Registry) RegisterFunc(name, help string, fn func() float64) error {
	return r.add(&metricEntry{name: name, help: help, kind: kindFunc, fn: fn})
}

// CounterValue returns the value of the named counter and whether it exists.
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.Lock()
	e, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || e.kind != kindCounter {
		return 0, false
	}
	return e.counter.Load(), true
}

// HistogramView returns the view of the named histogram and whether it
// exists.
func (r *Registry) HistogramView(name string) (HistogramView, bool) {
	r.mu.Lock()
	e, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || e.kind != kindHistogram {
		return HistogramView{}, false
	}
	return e.hist.View(), true
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// snapshotEntries copies the entry list under the lock so exposition walks
// it without holding the registry mutex across value reads.
func (r *Registry) snapshotEntries() []*metricEntry {
	r.mu.Lock()
	out := make([]*metricEntry, len(r.ordered))
	copy(out, r.ordered)
	r.mu.Unlock()
	return out
}
