package obs

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime bridges Go runtime health into reg so every scraped
// exposition carries process vitals next to the pipeline counters:
//
//	runtime.goroutines          live goroutine count
//	runtime.heap_alloc_bytes    bytes of live heap objects
//	runtime.heap_sys_bytes      heap memory obtained from the OS
//	runtime.gc_total            completed GC cycles
//	runtime.uptime_seconds      seconds since RegisterRuntime
//	runtime.gc_pause            histogram of individual GC stop-the-world pauses
//
// Values are sampled lazily at exposition time through one short-TTL
// MemStats snapshot shared by all gauges, so a scrape costs a single
// ReadMemStats. New GC pauses are folded into the histogram on each sample;
// the ingest gauges are registered before the histogram so a text scrape
// observes pauses from the cycle that just ran. Registration errors (name
// collisions) are joined and returned; steady-state collection never fails.
func RegisterRuntime(reg *Registry) error {
	s := &runtimeSampler{start: time.Now(), pauses: &Histogram{}}
	var errs []error
	register := func(name, help string, fn func() float64) {
		if err := reg.RegisterFunc(name, help, fn); err != nil {
			errs = append(errs, err)
		}
	}
	register("runtime.goroutines", "live goroutine count", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	register("runtime.heap_alloc_bytes", "bytes of live heap objects", func() float64 {
		return float64(s.sample().HeapAlloc)
	})
	register("runtime.heap_sys_bytes", "heap memory obtained from the OS", func() float64 {
		return float64(s.sample().HeapSys)
	})
	register("runtime.gc_total", "completed GC cycles", func() float64 {
		return float64(s.sample().NumGC)
	})
	register("runtime.uptime_seconds", "seconds since runtime metrics were registered", func() float64 {
		return time.Since(s.start).Seconds()
	})
	if err := reg.RegisterHistogram("runtime.gc_pause",
		"individual GC stop-the-world pause durations", s.pauses); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// runtimeSampler caches one MemStats snapshot for a short TTL so a scrape
// touching several runtime gauges pays for a single ReadMemStats, and folds
// newly completed GC pauses into the pause histogram as they appear.
type runtimeSampler struct {
	mu        sync.Mutex
	start     time.Time
	sampledAt time.Time
	lastNumGC uint32
	ms        runtime.MemStats
	pauses    *Histogram
}

const runtimeSampleTTL = 50 * time.Millisecond

func (s *runtimeSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sampledAt.IsZero() && time.Since(s.sampledAt) < runtimeSampleTTL {
		return s.ms
	}
	runtime.ReadMemStats(&s.ms)
	s.sampledAt = time.Now()
	// PauseNs is a ring of the last 256 pause times; ingest only the cycles
	// completed since the previous sample (dropping any the ring already
	// evicted under extreme GC churn).
	from := s.lastNumGC
	if s.ms.NumGC > from+uint32(len(s.ms.PauseNs)) {
		from = s.ms.NumGC - uint32(len(s.ms.PauseNs))
	}
	for n := from; n < s.ms.NumGC; n++ {
		s.pauses.Observe(time.Duration(s.ms.PauseNs[n%uint32(len(s.ms.PauseNs))]))
	}
	s.lastNumGC = s.ms.NumGC
	return s.ms
}
