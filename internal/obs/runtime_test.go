package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterRuntime(reg); err != nil {
		t.Fatal(err)
	}
	// Force at least one completed GC cycle so the pause histogram has
	// something to ingest.
	runtime.GC()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		"runtime_goroutines", "runtime_heap_alloc_bytes", "runtime_heap_sys_bytes",
		"runtime_gc_total", "runtime_uptime_seconds", "runtime_gc_pause",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("exposition missing %s:\n%s", name, text)
		}
	}

	// The scrape above ran the ingest funcs, so the pause histogram must now
	// hold the forced cycle.
	v, ok := reg.HistogramView("runtime.gc_pause")
	if !ok {
		t.Fatal("runtime.gc_pause not registered")
	}
	if v.Count < 1 {
		t.Fatalf("gc pause histogram empty after forced GC (count=%d)", v.Count)
	}
}

func TestRegisterRuntimeDuplicate(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterRuntime(reg); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRuntime(reg); err == nil {
		t.Fatal("second RegisterRuntime must report name collisions")
	}
}

func TestRuntimeSamplerCaches(t *testing.T) {
	s := &runtimeSampler{pauses: &Histogram{}}
	first := s.sample()
	at := s.sampledAt
	_ = first
	s.sample()
	if s.sampledAt != at {
		t.Fatal("second sample inside TTL re-read MemStats")
	}
}
