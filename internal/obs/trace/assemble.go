package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Assembly is the result of reconstructing span trees from a dump: spans
// grouped into per-generation (trace, segment) breakdowns, plus tree-health
// counters. An orphan is a span whose nonzero parent is absent from the
// dump — either a propagation bug or ring wrap evicting ancestors.
type Assembly struct {
	Generations []Generation `json:"generations"`
	Spans       int          `json:"spans"`
	Roots       int          `json:"roots"`
	Orphans     int          `json:"orphans"`
	Events      int          `json:"events"`
}

// Generation aggregates one (trace, segment) pair: every span stamped with
// that segment across all nodes, bucketed by node/stage.
type Generation struct {
	Trace  TraceID    `json:"trace"`
	Seg    int32      `json:"seg"`
	Stages []StageAgg `json:"stages"`
	// Elapsed is the wall-clock window from the earliest span start to the
	// latest span end in this generation — the end-to-end completion delay.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// StageAgg sums one node/stage pair within a generation.
type StageAgg struct {
	Node  string        `json:"node"`
	Stage string        `json:"stage"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Stage returns the aggregate for (node, stage), or nil.
func (g *Generation) Stage(node, stage string) *StageAgg {
	for i := range g.Stages {
		if g.Stages[i].Node == node && g.Stages[i].Stage == stage {
			return &g.Stages[i]
		}
	}
	return nil
}

// StageTotal sums Total across all nodes whose stage name matches.
func (g *Generation) StageTotal(stage string) time.Duration {
	var d time.Duration
	for i := range g.Stages {
		if g.Stages[i].Stage == stage {
			d += g.Stages[i].Total
		}
	}
	return d
}

// Assemble reconstructs per-generation breakdowns from a dump. Spans with
// no trace ID are ignored for grouping (they still count toward Spans and
// orphan detection); segment −1 spans (session roots, flushes) contribute
// to tree health but not to any generation bucket.
func Assemble(events []Event) *Assembly {
	a := &Assembly{Events: len(events)}
	ids := make(map[SpanID]struct{})
	for i := range events {
		if events[i].Kind == KindSpan && events[i].Span != 0 {
			ids[events[i].Span] = struct{}{}
		}
	}
	type genKey struct {
		tr  TraceID
		seg int32
	}
	gens := make(map[genKey]*Generation)
	starts := make(map[genKey]int64)
	ends := make(map[genKey]int64)
	for i := range events {
		e := &events[i]
		if e.Kind != KindSpan {
			continue
		}
		a.Spans++
		if e.Parent == 0 {
			a.Roots++
		} else if _, ok := ids[e.Parent]; !ok {
			a.Orphans++
		}
		if e.Trace == 0 || e.Seg < 0 {
			continue
		}
		k := genKey{e.Trace, e.Seg}
		g := gens[k]
		if g == nil {
			g = &Generation{Trace: e.Trace, Seg: e.Seg}
			gens[k] = g
			starts[k] = e.Start()
			ends[k] = e.TS
		}
		if s := e.Start(); s < starts[k] {
			starts[k] = s
		}
		if e.TS > ends[k] {
			ends[k] = e.TS
		}
		agg := g.Stage(e.Node, e.Stage)
		if agg == nil {
			g.Stages = append(g.Stages, StageAgg{Node: e.Node, Stage: e.Stage})
			agg = &g.Stages[len(g.Stages)-1]
		}
		agg.Count++
		agg.Total += e.Dur
		if e.Dur > agg.Max {
			agg.Max = e.Dur
		}
	}
	for k, g := range gens {
		g.Elapsed = time.Duration(ends[k] - starts[k])
		sort.Slice(g.Stages, func(i, j int) bool {
			if g.Stages[i].Node != g.Stages[j].Node {
				return g.Stages[i].Node < g.Stages[j].Node
			}
			return g.Stages[i].Stage < g.Stages[j].Stage
		})
		a.Generations = append(a.Generations, *g)
	}
	sort.Slice(a.Generations, func(i, j int) bool {
		if a.Generations[i].Trace != a.Generations[j].Trace {
			return a.Generations[i].Trace < a.Generations[j].Trace
		}
		return a.Generations[i].Seg < a.Generations[j].Seg
	})
	return a
}

// breakdownColumns is the canonical stage order for the per-generation
// latency table: where time goes as a generation moves origin → relay →
// leaf. Stages absent from a dump render as zero columns.
var breakdownColumns = []string{"encode", "queue_offer", "flush", "absorb", "recode"}

// Table renders the assembly as an aligned per-generation breakdown. Each
// row is one (trace, segment) generation; columns sum the named stage
// across every node that emitted it, and e2e is the wall-clock envelope.
func (a *Assembly) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %4s", "trace", "seg")
	for _, c := range breakdownColumns {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, " %12s\n", "e2e")
	for i := range a.Generations {
		g := &a.Generations[i]
		fmt.Fprintf(&b, "%-8d %4d", g.Trace, g.Seg)
		for _, c := range breakdownColumns {
			fmt.Fprintf(&b, " %12s", fmtDur(g.StageTotal(c)))
		}
		fmt.Fprintf(&b, " %12s\n", fmtDur(g.Elapsed))
	}
	fmt.Fprintf(&b, "spans=%d roots=%d orphans=%d events=%d generations=%d\n",
		a.Spans, a.Roots, a.Orphans, a.Events, len(a.Generations))
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// JSON renders the assembly as indented JSON.
func (a *Assembly) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", " ")
}
