// Package trace is a dependency-free distributed-tracing and flight-recorder
// subsystem for the coded serving path. It follows the same discipline as
// obs.StageOf: when disabled the hot-path cost is one atomic load and zero
// allocations, so tracing can stay compiled into every binary.
//
// Two primitives share one fixed-size ring:
//
//   - Spans: timed intervals (encode round, queue offer, writev flush, dial,
//     record absorb) linked into a causal tree by (Trace, Span, Parent) IDs.
//     IDs are process-local uint64s; the wire layer carries them across nodes
//     so one generation's records stay linkable origin → relay → leaf.
//   - Flight events: point-in-time facts (admission decisions, brownout rung
//     transitions, sheds, reconnects, redirects, rank milestones, fault
//     injections) recorded for postmortems when a chaos gate fails.
//
// The recorder is lock-free: a slice of atomic event pointers indexed by a
// monotonically increasing sequence counter. Writers allocate one immutable
// Event and publish it with a single pointer store; readers snapshot whatever
// pointers exist. Wrap-around discards the oldest events — size the ring for
// the window you want to keep (Dump reports drops).
package trace

import (
	"encoding/json"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end transfer. A trace is minted at the
// origin server and propagated downstream through the XNCP handshake.
type TraceID uint64

// SpanID identifies one span within a trace. The zero SpanID means "no
// parent" (a root span).
type SpanID uint64

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindSpan is a completed timed span.
	KindSpan Kind = iota
	// KindAdmission is a server admission decision (accept/busy/redirect).
	KindAdmission
	// KindBrownout is a brownout-ladder rung transition.
	KindBrownout
	// KindShed is a batch of frames dropped under backpressure.
	KindShed
	// KindReconnect is a fetcher re-establishing a session.
	KindReconnect
	// KindRedirect is a fetcher retargeted by an admission REDIRECT.
	KindRedirect
	// KindRank is a decoder rank milestone (a segment reaching full rank).
	KindRank
	// KindDrain is a server entering its drain window.
	KindDrain
	// KindFault is an injected fault (reset/stall/corrupt) from faultnet.
	KindFault
)

var kindNames = [...]string{
	KindSpan:      "span",
	KindAdmission: "admission",
	KindBrownout:  "brownout",
	KindShed:      "shed",
	KindReconnect: "reconnect",
	KindRedirect:  "redirect",
	KindRank:      "rank",
	KindDrain:     "drain",
	KindFault:     "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its string name so dumps stay readable.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the string name or the numeric value.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for i, n := range kindNames {
			if n == s {
				*k = Kind(i)
				return nil
			}
		}
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = Kind(n)
	return nil
}

// Event is one recorded fact. Events are immutable once published.
type Event struct {
	// Seq is the global publication order (gaps mean ring wrap).
	Seq uint64 `json:"seq"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// TS is the wall-clock time in Unix nanoseconds. For spans this is the
	// END time; subtract Dur for the start.
	TS int64 `json:"ts_ns"`
	// Node labels the emitting component ("origin", "relay-1", "leaf-3").
	Node string `json:"node"`
	// Stage is the span name, or a short detail string for flight events.
	Stage string `json:"stage,omitempty"`
	// Trace/Span/Parent link spans into a causal tree. Zero means unset.
	Trace  TraceID `json:"trace,omitempty"`
	Span   SpanID  `json:"span,omitempty"`
	Parent SpanID  `json:"parent,omitempty"`
	// Seg is the segment (generation) index, or -1 when not applicable.
	Seg int32 `json:"seg"`
	// Value carries a kind-specific magnitude (shed count, rung, rank...).
	Value int64 `json:"value,omitempty"`
	// Dur is the span duration (zero for flight events).
	Dur time.Duration `json:"dur_ns,omitempty"`
}

// Start returns the span's start time in Unix nanoseconds.
func (e *Event) Start() int64 { return e.TS - int64(e.Dur) }

// Recorder is a fixed-size lock-free ring of events plus the ID allocator
// for traces and spans. All methods are safe for concurrent use.
type Recorder struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64 // next sequence number == events published
	ids   atomic.Uint64 // shared trace/span ID allocator; 0 reserved
}

// NewRecorder returns a recorder whose ring holds size events (rounded up
// to a power of two, minimum 64).
func NewRecorder(size int) *Recorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int { return len(r.slots) }

// Published returns the total number of events recorded, including any
// since overwritten by ring wrap.
func (r *Recorder) Published() uint64 { return r.seq.Load() }

func (r *Recorder) record(e *Event) {
	e.Seq = r.seq.Add(1) - 1
	r.slots[e.Seq&r.mask].Store(e)
}

// Events snapshots the ring, sorted by sequence number. The snapshot is not
// a consistent cut (standard for lock-free collectors) but every returned
// event is internally consistent because events are immutable.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// active is the process-global recorder; nil means tracing is disabled and
// every entry point degrades to one atomic load.
var active atomic.Pointer[Recorder]

// Enable installs a fresh process-global recorder with the given ring size
// and returns it. Passing the result around is optional — the package-level
// entry points find it via one atomic load.
func Enable(size int) *Recorder {
	r := NewRecorder(size)
	active.Store(r)
	return r
}

// Disable removes the global recorder. In-flight spans complete as no-ops
// against their captured recorder.
func Disable() { active.Store(nil) }

// Enabled reports whether a global recorder is installed.
func Enabled() bool { return active.Load() != nil }

// Active returns the global recorder, or nil when disabled.
func Active() *Recorder { return active.Load() }

// NewTrace mints a fresh trace ID, or 0 when tracing is disabled.
func NewTrace() TraceID {
	r := active.Load()
	if r == nil {
		return 0
	}
	return TraceID(r.ids.Add(1))
}

// Span is an in-flight timed interval. The zero Span (returned when tracing
// is disabled) is inert: ID() is 0 and End() does nothing, so call sites
// never branch.
type Span struct {
	r      *Recorder
	node   string
	stage  string
	tr     TraceID
	id     SpanID
	parent SpanID
	seg    int32
	t0     time.Time
}

// Begin starts a span. When tracing is disabled this is one atomic load and
// zero allocations. seg is the segment index, or -1 when not applicable.
func Begin(node, stage string, tr TraceID, parent SpanID, seg int32) Span {
	r := active.Load()
	if r == nil {
		return Span{}
	}
	return Span{
		r:      r,
		node:   node,
		stage:  stage,
		tr:     tr,
		id:     SpanID(r.ids.Add(1)),
		parent: parent,
		seg:    seg,
		t0:     time.Now(),
	}
}

// ID returns the span's ID (0 for the inert span), available immediately so
// it can parent children or be stamped into record framing before End.
func (s Span) ID() SpanID { return s.id }

// Active reports whether the span will record on End.
func (s Span) Active() bool { return s.r != nil }

// End publishes the completed span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	now := time.Now()
	s.r.record(&Event{
		Kind:   KindSpan,
		TS:     now.UnixNano(),
		Node:   s.node,
		Stage:  s.stage,
		Trace:  s.tr,
		Span:   s.id,
		Parent: s.parent,
		Seg:    s.seg,
		Dur:    now.Sub(s.t0),
	})
}

// Emit records a flight event. When tracing is disabled this is one atomic
// load and zero allocations. seg is the segment index or -1; value carries
// a kind-specific magnitude.
func Emit(k Kind, node, detail string, seg int32, value int64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.record(&Event{
		Kind:  k,
		TS:    time.Now().UnixNano(),
		Node:  node,
		Stage: detail,
		Seg:   seg,
		Value: value,
	})
}

// Dump snapshots the global recorder's events (nil when disabled).
func Dump() []Event {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.Events()
}

// DumpDoc is the JSON shape of a flight-recorder dump.
type DumpDoc struct {
	Enabled    bool    `json:"enabled"`
	CapturedAt int64   `json:"captured_at_ns"`
	Capacity   int     `json:"capacity"`
	Published  uint64  `json:"published"`
	Events     []Event `json:"events"`
}

// DumpJSON renders the global recorder as indented JSON, suitable for the
// /debug/flight route, SIGQUIT handlers, and gate-failure artifacts. It
// always returns a valid document, even when tracing is disabled.
func DumpJSON() []byte {
	doc := DumpDoc{CapturedAt: time.Now().UnixNano()}
	if r := active.Load(); r != nil {
		doc.Enabled = true
		doc.Capacity = r.Cap()
		doc.Published = r.Published()
		doc.Events = r.Events()
	}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		// The document is built from plain values; marshalling cannot fail.
		return []byte(`{"enabled":false,"events":[]}`)
	}
	return b
}
