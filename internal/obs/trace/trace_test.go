package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// swap installs a fresh recorder for one test and restores the previous
// global state afterwards, so tests can run in any order.
func swap(t *testing.T, size int) *Recorder {
	t.Helper()
	prev := active.Load()
	r := Enable(size)
	t.Cleanup(func() { active.Store(prev) })
	return r
}

func TestDisabledPathInert(t *testing.T) {
	prev := active.Load()
	Disable()
	t.Cleanup(func() { active.Store(prev) })

	sp := Begin("n", "stage", 1, 2, 0)
	if sp.Active() || sp.ID() != 0 {
		t.Fatalf("disabled Begin returned live span: %+v", sp)
	}
	sp.End()
	Emit(KindShed, "n", "", -1, 3)
	if NewTrace() != 0 {
		t.Fatal("disabled NewTrace must return 0")
	}
	if Dump() != nil {
		t.Fatal("disabled Dump must return nil")
	}
	var doc DumpDoc
	if err := json.Unmarshal(DumpJSON(), &doc); err != nil {
		t.Fatalf("disabled DumpJSON invalid: %v", err)
	}
	if doc.Enabled || len(doc.Events) != 0 {
		t.Fatalf("disabled DumpJSON = %+v", doc)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	prev := active.Load()
	Disable()
	t.Cleanup(func() { active.Store(prev) })

	if n := testing.AllocsPerRun(200, func() {
		sp := Begin("node", "stage", 7, 9, 3)
		sp.End()
		Emit(KindBrownout, "node", "paced", -1, 1)
		_ = NewTrace()
	}); n != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", n)
	}
}

func TestSpanRecordsTree(t *testing.T) {
	swap(t, 64)
	tr := NewTrace()
	root := Begin("origin", "serve", tr, 0, -1)
	child := Begin("origin", "encode", tr, root.ID(), 2)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	evs := Dump()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Stage != "encode" || evs[0].Parent != root.ID() || evs[0].Seg != 2 {
		t.Fatalf("child event wrong: %+v", evs[0])
	}
	if evs[0].Dur < time.Millisecond {
		t.Fatalf("child duration %v, want >= 1ms", evs[0].Dur)
	}
	if evs[0].Start() != evs[0].TS-int64(evs[0].Dur) {
		t.Fatal("Start() inconsistent with TS/Dur")
	}
	if evs[1].Stage != "serve" || evs[1].Parent != 0 || evs[1].Seg != -1 {
		t.Fatalf("root event wrong: %+v", evs[1])
	}
	if evs[0].Trace != tr || evs[1].Trace != tr {
		t.Fatal("trace ID not propagated")
	}
}

func TestIDsUnique(t *testing.T) {
	swap(t, 64)
	seen := map[SpanID]bool{}
	for i := 0; i < 100; i++ {
		sp := Begin("n", "s", 1, 0, -1)
		if sp.ID() == 0 || seen[sp.ID()] {
			t.Fatalf("duplicate or zero span ID %d", sp.ID())
		}
		seen[sp.ID()] = true
	}
	if tr := NewTrace(); seen[SpanID(tr)] {
		t.Fatal("trace ID collided with span ID")
	}
}

func TestRingWrap(t *testing.T) {
	r := swap(t, 64) // rounds to 64 slots
	total := 200
	for i := 0; i < total; i++ {
		Emit(KindShed, "n", "", -1, int64(i))
	}
	if got := r.Published(); got != uint64(total) {
		t.Fatalf("Published = %d, want %d", got, total)
	}
	evs := r.Events()
	if len(evs) != r.Cap() {
		t.Fatalf("ring kept %d events, want %d", len(evs), r.Cap())
	}
	// Survivors must be the newest events, in order.
	for i, e := range evs {
		want := int64(total - r.Cap() + i)
		if e.Value != want {
			t.Fatalf("slot %d holds value %d, want %d", i, e.Value, want)
		}
	}
}

func TestRecorderSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024}} {
		if got := NewRecorder(tc.in).Cap(); got != tc.want {
			t.Fatalf("NewRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestConcurrentRecord hammers the ring from many goroutines under -race:
// every snapshot event must be internally consistent and sequence numbers
// strictly increasing.
func TestConcurrentRecord(t *testing.T) {
	r := swap(t, 256)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := Begin("node", "stage", TraceID(w+1), 0, int32(i%4))
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			evs := r.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Fatalf("sequence not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
				}
			}
			if r.Published() != workers*per {
				t.Fatalf("Published = %d, want %d", r.Published(), workers*per)
			}
			return
		default:
			for _, e := range r.Events() {
				if e.Kind != KindSpan || e.Node != "node" || e.Stage != "stage" {
					t.Fatalf("torn event: %+v", e)
				}
			}
		}
	}
}

func TestAssembleBreakdown(t *testing.T) {
	swap(t, 1024)
	tr := NewTrace()
	origin := Begin("origin", "serve", tr, 0, -1)
	for seg := int32(0); seg < 2; seg++ {
		round := Begin("origin", "round", tr, origin.ID(), seg)
		enc := Begin("origin", "encode", tr, round.ID(), seg)
		enc.End()
		abs := Begin("leaf-0", "absorb", tr, round.ID(), seg)
		abs.End()
		round.End()
	}
	origin.End()

	a := Assemble(Dump())
	if a.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0", a.Orphans)
	}
	if a.Roots != 1 {
		t.Fatalf("roots = %d, want 1", a.Roots)
	}
	if len(a.Generations) != 2 {
		t.Fatalf("generations = %d, want 2", len(a.Generations))
	}
	g := &a.Generations[0]
	if g.Trace != tr || g.Seg != 0 {
		t.Fatalf("generation key wrong: %+v", g)
	}
	if s := g.Stage("origin", "encode"); s == nil || s.Count != 1 {
		t.Fatalf("origin/encode aggregate missing: %+v", g.Stages)
	}
	if s := g.Stage("leaf-0", "absorb"); s == nil || s.Count != 1 {
		t.Fatalf("leaf-0/absorb aggregate missing: %+v", g.Stages)
	}
	if g.Elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", g.Elapsed)
	}
	tab := a.Table()
	if !containsAll(tab, "trace", "encode", "absorb", "e2e", "orphans=0") {
		t.Fatalf("table missing columns:\n%s", tab)
	}
	if _, err := a.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

func TestAssembleOrphanDetection(t *testing.T) {
	swap(t, 64)
	tr := NewTrace()
	// Child references a parent span that is never published.
	child := Begin("leaf", "absorb", tr, SpanID(9999), 0)
	child.End()
	a := Assemble(Dump())
	if a.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", a.Orphans)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	swap(t, 64)
	Emit(KindAdmission, "origin", "busy", -1, 25)
	sp := Begin("origin", "serve", NewTrace(), 0, -1)
	sp.End()
	var doc DumpDoc
	if err := json.Unmarshal(DumpJSON(), &doc); err != nil {
		t.Fatalf("DumpJSON invalid: %v", err)
	}
	if !doc.Enabled || len(doc.Events) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Events[0].Kind != KindAdmission || doc.Events[0].Stage != "busy" {
		t.Fatalf("admission event wrong after round trip: %+v", doc.Events[0])
	}
	if doc.Events[1].Kind != KindSpan {
		t.Fatalf("span kind wrong after round trip: %+v", doc.Events[1])
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
