// Package p2p simulates Avalanche-style bulk content distribution (paper
// Sec. 2, refs [3][7]) on the simnet substrate, with network coding and two
// baselines. It exercises the codec end-to-end — encoding at the source,
// recoding at every peer, progressive decoding at the sinks — and measures
// the redundancy each strategy ships, reproducing the motivating result
// that random linear coding with recoding wastes almost no transmissions
// while plain forwarding suffers coupon-collector duplication.
package p2p

import (
	"fmt"
	"math/rand"

	"extremenc/internal/rlnc"
	"extremenc/internal/simnet"
)

// Mode selects the distribution strategy.
type Mode int

const (
	// ModeRLNC: the source sends random coded blocks; every peer recodes
	// fresh combinations from everything it holds (full network coding).
	ModeRLNC Mode = iota + 1
	// ModeForward: the source sends coded blocks but peers only forward
	// verbatim copies of blocks they hold (coding at the edge only).
	ModeForward
	// ModeUncoded: plain blocks, forwarded verbatim — the BitTorrent-like
	// baseline with coupon-collector behaviour.
	ModeUncoded
)

func (m Mode) String() string {
	switch m {
	case ModeRLNC:
		return "rlnc"
	case ModeForward:
		return "forward-coded"
	case ModeUncoded:
		return "uncoded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a distribution session.
type Config struct {
	Params    rlnc.Params
	Peers     int // leecher count (the source is extra)
	Neighbors int // outgoing links per node

	// Segments is the number of coding generations in the distributed
	// object (default 1). Multi-segment sessions are the workload behind
	// the paper's offline multi-segment decoding (Sec. 5.2: Avalanche
	// "gathers a large number of coded blocks over a period of time and
	// performs decoding offline").
	Segments int

	// CollectSets retains the first finishing peer's innovative blocks per
	// segment in Result.SampleSets — ready to feed an offline
	// (multi-segment) decoder.
	CollectSets bool

	LinkBandwidthBps float64
	LinkLatency      float64
	// LossRate is the per-link message drop probability in [0, 1); RLNC is
	// loss-oblivious — lost blocks are simply replaced by later ones.
	LossRate float64

	Mode Mode
	Seed int64

	// MaxSimTime bounds the virtual clock (safety for non-converging
	// baselines). Zero means 1e6 seconds.
	MaxSimTime float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Peers <= 0 {
		return fmt.Errorf("p2p: peer count %d must be positive", c.Peers)
	}
	if c.Neighbors <= 0 {
		return fmt.Errorf("p2p: neighbor count %d must be positive", c.Neighbors)
	}
	if c.LinkBandwidthBps <= 0 {
		return fmt.Errorf("p2p: link bandwidth must be positive")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("p2p: loss rate %g out of [0, 1)", c.LossRate)
	}
	if c.Mode < ModeRLNC || c.Mode > ModeUncoded {
		return fmt.Errorf("p2p: unknown mode %d", int(c.Mode))
	}
	if c.Segments < 0 {
		return fmt.Errorf("p2p: segment count %d must be non-negative", c.Segments)
	}
	return nil
}

// Result summarizes a session.
type Result struct {
	Mode      Mode
	Peers     int
	Completed int // peers that fully decoded

	MeanFinish float64 // mean finish time over completed peers, seconds
	MaxFinish  float64

	BlocksSent    int64
	BytesSent     int64
	BlocksDropped int64 // lost in transit on lossy links
	BlocksUseless int64 // received blocks that added no rank (duplicates/dependent)

	// SampleSets holds, when Config.CollectSets is set, the first finishing
	// peer's innovative coded blocks grouped by segment — a ready-made
	// offline multi-segment decode workload.
	SampleSets [][]*rlnc.CodedBlock

	// Overhead is received blocks per needed block across completed peers:
	// 1.0 is perfect; coupon-collector forwarding is much higher.
	Overhead float64

	SimTime float64
}

type node struct {
	id       int
	decoders []*rlnc.Decoder      // per segment; nil on the source
	stores   [][]*rlnc.CodedBlock // innovative blocks per segment
	pending  int                  // segments not yet decoded
	useless  int64
	recv     int64
	sendSeq  int64 // source scheduling counter
	done     bool
	finish   float64
}

type session struct {
	cfg      Config
	sched    *simnet.Scheduler
	rng      *rand.Rand
	source   []*rlnc.Segment
	encoders []*rlnc.Encoder
	nodes    []*node
	links    []*simnet.Link
	pending  int // peers not yet done
}

// Run executes one distribution session to completion (or MaxSimTime) and
// verifies every completed peer decoded the exact source payload.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxTime := cfg.MaxSimTime
	if maxTime <= 0 {
		maxTime = 1e6
	}

	segments := cfg.Segments
	if segments == 0 {
		segments = 1
	}
	cfg.Segments = segments

	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &session{
		cfg:     cfg,
		sched:   simnet.NewScheduler(),
		rng:     rng,
		pending: cfg.Peers,
	}
	for i := 0; i < segments; i++ {
		data := make([]byte, cfg.Params.SegmentSize())
		rng.Read(data)
		seg, err := rlnc.SegmentFromData(uint32(i), cfg.Params, data)
		if err != nil {
			return nil, err
		}
		s.source = append(s.source, seg)
		s.encoders = append(s.encoders, rlnc.NewEncoder(seg, rng))
	}
	if err := s.buildTopology(); err != nil {
		return nil, err
	}
	s.sched.RunUntil(maxTime, func() bool { return s.pending == 0 })

	return s.result()
}

// buildTopology creates the random directed overlay: every node gets
// cfg.Neighbors outgoing links, and every peer is guaranteed an incoming
// link from an earlier node so the source reaches everyone.
func (s *session) buildTopology() error {
	total := s.cfg.Peers + 1
	s.nodes = make([]*node, total)
	s.nodes[0] = &node{id: 0} // the source
	for i := 1; i < total; i++ {
		n := &node{
			id:       i,
			decoders: make([]*rlnc.Decoder, s.cfg.Segments),
			stores:   make([][]*rlnc.CodedBlock, s.cfg.Segments),
			pending:  s.cfg.Segments,
		}
		for sg := range n.decoders {
			dec, err := rlnc.NewDecoder(s.cfg.Params)
			if err != nil {
				return err
			}
			n.decoders[sg] = dec
		}
		s.nodes[i] = n
	}

	type edge struct{ from, to int }
	seen := make(map[edge]bool)
	addEdge := func(from, to int) error {
		if from == to || seen[edge{from, to}] || to == 0 {
			return nil
		}
		seen[edge{from, to}] = true
		link, err := simnet.NewLink(s.sched, s.cfg.LinkBandwidthBps, s.cfg.LinkLatency)
		if err != nil {
			return err
		}
		if s.cfg.LossRate > 0 {
			if err := link.SetLoss(s.cfg.LossRate, s.rng); err != nil {
				return err
			}
		}
		s.links = append(s.links, link)
		s.sched.At(0, func() { s.pump(link, s.nodes[from], s.nodes[to]) })
		return nil
	}

	for i := 1; i < total; i++ {
		if err := addEdge(s.rng.Intn(i), i); err != nil { // reachability
			return err
		}
	}
	for from := 0; from < total; from++ {
		for j := 0; j < s.cfg.Neighbors; j++ {
			if err := addEdge(from, 1+s.rng.Intn(s.cfg.Peers)); err != nil {
				return err
			}
		}
	}
	return nil
}

// pump keeps one directed link busy: send the next block, and when it
// arrives, deliver and schedule the next transmission.
func (s *session) pump(link *simnet.Link, from, to *node) {
	if s.pending == 0 || to.done {
		return
	}
	blk := s.nextBlock(from)
	if blk == nil {
		// Sender holds nothing yet; retry shortly.
		s.sched.After(0.01, func() { s.pump(link, from, to) })
		return
	}
	s.sched.After(0.005, func() {}) // keep clock monotone under zero latency
	link.SendWithLoss(blk.WireSize(),
		func() {
			s.deliver(to, blk)
			s.pump(link, from, to)
		},
		func() {
			// Dropped in transit: just keep transmitting — RLNC needs no
			// retransmission protocol.
			s.pump(link, from, to)
		})
}

// nextBlock picks what a node transmits under the session mode.
func (s *session) nextBlock(from *node) *rlnc.CodedBlock {
	if from.id == 0 {
		return s.sourceBlock(from)
	}
	// Pick a random held segment to relay from.
	held := make([]int, 0, len(from.stores))
	for sg, store := range from.stores {
		if len(store) > 0 {
			held = append(held, sg)
		}
	}
	if len(held) == 0 {
		return nil
	}
	sg := held[s.rng.Intn(len(held))]
	store := from.stores[sg]
	switch s.cfg.Mode {
	case ModeRLNC:
		rec, err := rlnc.NewRecoder(s.cfg.Params)
		if err != nil {
			return nil
		}
		for _, b := range store {
			if err := rec.Add(b); err != nil {
				return nil
			}
		}
		blk, err := rec.NextBlock(s.rng)
		if err != nil {
			return nil
		}
		return blk
	default: // ModeForward, ModeUncoded: verbatim copy of a random block
		return store[s.rng.Intn(len(store))].Clone()
	}
}

// sourceBlock generates the source's next transmission, cycling through
// the object's segments.
func (s *session) sourceBlock(from *node) *rlnc.CodedBlock {
	seq := from.sendSeq
	from.sendSeq++
	sg := int(seq) % s.cfg.Segments
	if s.cfg.Mode == ModeUncoded {
		// Round-robin plain blocks expressed as unit-coefficient coded
		// blocks, so the same decoder machinery applies.
		n := s.cfg.Params.BlockCount
		i := int(seq/int64(s.cfg.Segments)) % n
		coeffs := make([]byte, n)
		coeffs[i] = 1
		blk, err := s.encoders[sg].BlockFor(coeffs)
		if err != nil {
			return nil
		}
		return blk
	}
	return s.encoders[sg].NextBlock()
}

// deliver feeds a block into a peer's per-segment decoder and store.
func (s *session) deliver(to *node, blk *rlnc.CodedBlock) {
	if to.done {
		return
	}
	sg := int(blk.SegmentID)
	if sg < 0 || sg >= len(to.decoders) {
		return
	}
	to.recv++
	dec := to.decoders[sg]
	wasReady := dec.Ready()
	innovative, err := dec.AddBlock(blk)
	if err != nil {
		return
	}
	if !innovative {
		to.useless++
		return
	}
	to.stores[sg] = append(to.stores[sg], blk)
	if !wasReady && dec.Ready() {
		to.pending--
		if to.pending == 0 {
			to.done = true
			to.finish = s.sched.Now()
			s.pending--
		}
	}
}

// result verifies completed decodes and aggregates metrics.
func (s *session) result() (*Result, error) {
	res := &Result{
		Mode:    s.cfg.Mode,
		Peers:   s.cfg.Peers,
		SimTime: s.sched.Now(),
	}
	var finishSum float64
	var recvTotal int64
	for _, n := range s.nodes[1:] {
		res.BlocksUseless += n.useless
		recvTotal += n.recv
		if !n.done {
			continue
		}
		for sg, dec := range n.decoders {
			seg, err := dec.Segment()
			if err != nil {
				return nil, fmt.Errorf("p2p: peer %d segment %d: %w", n.id, sg, err)
			}
			if !seg.Equal(s.source[sg]) {
				return nil, fmt.Errorf("p2p: peer %d decoded corrupt segment %d", n.id, sg)
			}
		}
		if s.cfg.CollectSets && res.SampleSets == nil {
			res.SampleSets = append([][]*rlnc.CodedBlock(nil), n.stores...)
		}
		res.Completed++
		finishSum += n.finish
		if n.finish > res.MaxFinish {
			res.MaxFinish = n.finish
		}
	}
	if res.Completed > 0 {
		res.MeanFinish = finishSum / float64(res.Completed)
		needed := int64(res.Completed) * int64(s.cfg.Params.BlockCount) * int64(s.cfg.Segments)
		res.Overhead = float64(recvTotal) / float64(needed)
	}
	for _, l := range s.links {
		m, b := l.Sent()
		res.BlocksSent += m
		res.BytesSent += b
		res.BlocksDropped += l.Dropped()
	}
	return res, nil
}
