package p2p

import (
	"testing"

	"extremenc/internal/rlnc"
)

func baseConfig(mode Mode) Config {
	return Config{
		Params:           rlnc.Params{BlockCount: 16, BlockSize: 256},
		Peers:            12,
		Neighbors:        3,
		LinkBandwidthBps: 8e6, // 1 MB/s
		LinkLatency:      0.005,
		Mode:             mode,
		Seed:             42,
		MaxSimTime:       300,
	}
}

func TestValidation(t *testing.T) {
	good := baseConfig(ModeRLNC)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Peers = 0 },
		func(c *Config) { c.Neighbors = 0 },
		func(c *Config) { c.LinkBandwidthBps = 0 },
		func(c *Config) { c.Mode = Mode(9) },
		func(c *Config) { c.Params.BlockCount = 0 },
	}
	for i, mutate := range cases {
		cfg := baseConfig(ModeRLNC)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRLNCSessionCompletes(t *testing.T) {
	res, err := Run(baseConfig(ModeRLNC))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Peers {
		t.Fatalf("completed %d of %d peers", res.Completed, res.Peers)
	}
	if res.MaxFinish <= 0 || res.MeanFinish <= 0 || res.MeanFinish > res.MaxFinish {
		t.Fatalf("finish times: mean %v max %v", res.MeanFinish, res.MaxFinish)
	}
	if res.BlocksSent == 0 || res.BytesSent == 0 {
		t.Fatal("no traffic recorded")
	}
	// Network coding ships very little redundancy.
	if res.Overhead > 1.6 {
		t.Errorf("RLNC overhead = %.2f, want near 1", res.Overhead)
	}
}

func TestAllModesComplete(t *testing.T) {
	for _, mode := range []Mode{ModeRLNC, ModeForward, ModeUncoded} {
		cfg := baseConfig(mode)
		cfg.MaxSimTime = 2000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Completed == 0 {
			t.Errorf("%v: no peers completed", mode)
		}
	}
}

// TestCodingBeatsForwarding reproduces the motivating comparison: with
// recoding at the peers, the same topology finishes with less redundancy
// (and typically sooner) than verbatim forwarding of coded or plain blocks.
func TestCodingBeatsForwarding(t *testing.T) {
	run := func(mode Mode) *Result {
		cfg := baseConfig(mode)
		cfg.MaxSimTime = 5000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed < res.Peers {
			t.Fatalf("%v completed only %d/%d", mode, res.Completed, res.Peers)
		}
		return res
	}
	rlncRes := run(ModeRLNC)
	fwd := run(ModeForward)
	unc := run(ModeUncoded)

	if rlncRes.Overhead >= fwd.Overhead {
		t.Errorf("RLNC overhead %.2f not below forwarding %.2f", rlncRes.Overhead, fwd.Overhead)
	}
	if rlncRes.Overhead >= unc.Overhead {
		t.Errorf("RLNC overhead %.2f not below uncoded %.2f", rlncRes.Overhead, unc.Overhead)
	}
	if rlncRes.MaxFinish > 1.5*fwd.MaxFinish {
		t.Errorf("RLNC finish %.1f much worse than forwarding %.1f", rlncRes.MaxFinish, fwd.MaxFinish)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseConfig(ModeRLNC))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(ModeRLNC))
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxFinish != b.MaxFinish || a.BlocksSent != b.BlocksSent || a.Overhead != b.Overhead {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := baseConfig(ModeRLNC)
	c.Seed = 43
	cRes, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.BlocksSent == a.BlocksSent && cRes.MaxFinish == a.MaxFinish {
		t.Log("warning: different seeds produced identical results (possible but unlikely)")
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeRLNC, ModeForward, ModeUncoded, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
}

func TestScalesToMorePeers(t *testing.T) {
	cfg := baseConfig(ModeRLNC)
	cfg.Peers = 40
	cfg.Neighbors = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d/40", res.Completed)
	}
}

// TestLossyNetworkStillCompletes: RLNC needs no retransmission protocol —
// lost blocks are replaced by later (equally useful) ones.
func TestLossyNetworkStillCompletes(t *testing.T) {
	cfg := baseConfig(ModeRLNC)
	cfg.LossRate = 0.3
	cfg.MaxSimTime = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Peers {
		t.Fatalf("completed %d/%d under 30%% loss", res.Completed, res.Peers)
	}
	if res.BlocksDropped == 0 {
		t.Fatal("no drops recorded at 30% loss")
	}
	lossless, err := Run(baseConfig(ModeRLNC))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinish <= lossless.MaxFinish {
		t.Error("loss should slow completion")
	}
}

func TestLossRateValidation(t *testing.T) {
	cfg := baseConfig(ModeRLNC)
	cfg.LossRate = -0.1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative loss rate accepted")
	}
	cfg.LossRate = 1.0
	if _, err := Run(cfg); err == nil {
		t.Fatal("loss rate 1.0 accepted")
	}
}

// TestMultiSegmentSession: a 5-segment object distributes fully, and the
// collected sample sets feed an offline batch decode.
func TestMultiSegmentSession(t *testing.T) {
	cfg := baseConfig(ModeRLNC)
	cfg.Segments = 5
	cfg.CollectSets = true
	cfg.MaxSimTime = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Peers {
		t.Fatalf("completed %d/%d with 5 segments", res.Completed, res.Peers)
	}
	if len(res.SampleSets) != 5 {
		t.Fatalf("sample sets = %d", len(res.SampleSets))
	}
	// The collected sets are an offline decode workload: each must span its
	// segment.
	for sg, set := range res.SampleSets {
		if len(set) != cfg.Params.BlockCount {
			t.Fatalf("segment %d: %d innovative blocks, want %d", sg, len(set), cfg.Params.BlockCount)
		}
		dec, err := rlnc.NewBatchDecoder(cfg.Params)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range set {
			if err := dec.Add(b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("segment %d offline decode: %v", sg, err)
		}
	}
	// Overhead normalizes by segments.
	if res.Overhead > 1.8 {
		t.Errorf("multi-segment overhead = %.2f", res.Overhead)
	}
	if _, err := Run(Config{Params: cfg.Params, Peers: 1, Neighbors: 1,
		LinkBandwidthBps: 1, Segments: -1, Mode: ModeRLNC}); err == nil {
		t.Fatal("negative segments accepted")
	}
}
