package rlnc

import (
	"extremenc/internal/gf256"
	"extremenc/internal/obs"
)

// stageAbsorb times one batched Gauss–Jordan absorb (an AddBlocks call).
// Free when no obs sink is installed.
var stageAbsorb = obs.StageOf("rlnc.absorb")

// Batched absorb for the progressive Gauss–Jordan decoder. AddBlock reduces
// one arrival at a time with scalar row operations; AddBlocks stages a whole
// batch of arrivals and eliminates them in three fused sweeps, which is the
// decode-side analogue of the tiled batch encoder:
//
//	A. every staged row sheds the existing pivot columns — pairs of staged
//	   rows × quadruples of pivot rows through MulAddSlice4x2;
//	B. the staged rows are absorbed in arrival order against the pivots the
//	   batch itself creates (quadruple gathers via MulAddSlice4, pivot
//	   back-substitution within the batch via MulAddSlice1x2);
//	C. the new pivot columns are eliminated from the pre-existing rows in
//	   one deferred sweep, again pairs × quadruples.
//
// The gathers are exact because stored pivot rows are in full reduced
// row-echelon form: a pivot row is zero at every other pivot column, so the
// factors a row holds at the pivot columns cannot change while those columns
// are eliminated — they can all be read up front and applied fused.
//
// The staged rows live in per-decoder reusable scratch drawn from the shared
// pool (pool.go); only rows that turn out innovative are copied to permanent
// storage, so dependent arrivals cost no allocation at all.

// AddBlocks absorbs a batch of coded blocks and returns how many of them
// were innovative (increased rank). The result — rank, stored rows, and
// recovered segment — is byte-identical to calling AddBlock on each block in
// order; only the row-operation schedule differs. The batch is validated up
// front and rejected as a whole on the first invalid or wrong-segment block,
// absorbing nothing.
func (d *Decoder) AddBlocks(blocks []*CodedBlock) (innovative int, err error) {
	if len(blocks) == 0 {
		return 0, nil
	}
	segID, haveSeg := d.segID, d.haveSeg
	if !haveSeg {
		segID = blocks[0].SegmentID
	}
	for _, b := range blocks {
		if err := b.Validate(d.params); err != nil {
			return 0, err
		}
		if b.SegmentID != segID {
			return 0, wrongSegmentError(segID, b.SegmentID)
		}
	}
	d.segID, d.haveSeg = segID, true

	// GF(2) routing: while the decoder is on the XOR fast path and the whole
	// batch is binary, absorb per-row through addBlockXor — the fused staging
	// below buys nothing when every row operation is already a single XOR,
	// and the per-row path is what the rlnc.xor_absorb stage observes. A
	// batch containing any dense block drops the decoder into the general
	// fused machinery for good (the result is byte-identical either way:
	// MulAddSlice at coefficient 1 is XorSlice).
	if d.xorOnly {
		allBinary := true
		for _, b := range blocks {
			if !b.IsBinary() {
				allBinary = false
				break
			}
		}
		if allBinary {
			d.received += len(blocks)
			for _, b := range blocks {
				ok, err := d.addBlockXor(b)
				if err != nil {
					return innovative, err
				}
				if ok {
					innovative++
				}
			}
			return innovative, nil
		}
		d.xorOnly = false
	}

	defer stageAbsorb.Start().End()
	d.received += len(blocks)

	n, k := d.params.BlockCount, d.params.BlockSize
	w := n + k
	s := d.scratch()

	// Stage the batch: rows of [C | x] in one reusable backing buffer.
	buf := s.Bytes(len(blocks) * w)
	staged, _ := s.rowViews(len(blocks))
	for i, b := range blocks {
		row := buf[i*w : (i+1)*w : (i+1)*w]
		copy(row, b.Coeffs)
		copy(row[n:], b.Payload)
		staged[i] = row
	}

	// Existing pivot columns and rows, gathered once for phases A and C.
	oldCols := s.colBuf(n)
	for c := 0; c < n; c++ {
		if d.rowForPivot[c] != nil {
			oldCols = append(oldCols, c)
		}
	}

	// Phase A: one fused sweep eliminates every existing pivot column from
	// every staged row.
	eliminateColsFused(staged, d.rowForPivot, oldCols)

	// Phase B: absorb staged rows in arrival order. Each row first sheds the
	// pivots created earlier in this batch (their columns are stable for the
	// same RREF reason), then the first remaining non-zero column becomes its
	// pivot. Back-substitution into old rows is deferred to phase C; within
	// the batch it runs immediately so the new pivot set stays mutually
	// reduced.
	newCols := make([]int, 0, len(blocks))
	for _, row := range staged {
		eliminateColsRow(row, d.rowForPivot, newCols)
		pivot := -1
		for c := 0; c < n; c++ {
			if row[c] != 0 {
				pivot = c
				break
			}
		}
		if pivot < 0 {
			d.dependent++
			continue
		}
		if pv := row[pivot]; pv != 1 {
			gf256.ScaleSlice(row, gf256.Inv(pv))
		}
		// Promote the scratch row to permanent storage.
		perm := make([]byte, w)
		copy(perm, row)
		backSubPivot(d.rowForPivot, newCols, perm, pivot)
		d.rowForPivot[pivot] = perm
		newCols = append(newCols, pivot)
		d.rank++
		innovative++
	}

	// Phase C: eliminate the batch's pivot columns from every pre-existing
	// row in one fused sweep.
	if len(newCols) > 0 && len(oldCols) > 0 {
		oldRows, _ := s.rowViews(len(oldCols))
		for i, c := range oldCols {
			oldRows[i] = d.rowForPivot[c]
		}
		eliminateColsFused(oldRows, d.rowForPivot, newCols)
	}
	return innovative, nil
}

// eliminateColsFused cancels the given pivot columns out of every dst row.
// pivotByCol[c] must hold the pivot row for each c in cols, each pivot row
// zero at every other listed column (full RREF), so all factors are read up
// front. Rows are processed in pairs and columns in quadruples through the
// dual-destination fused kernel.
func eliminateColsFused(dsts [][]byte, pivotByCol [][]byte, cols []int) {
	if len(cols) == 0 {
		return
	}
	di := 0
	for ; di+2 <= len(dsts); di += 2 {
		a, b := dsts[di], dsts[di+1]
		i := 0
		for ; i+4 <= len(cols); i += 4 {
			c1, c2, c3, c4 := cols[i], cols[i+1], cols[i+2], cols[i+3]
			ca := [4]byte{a[c1], a[c2], a[c3], a[c4]}
			cb := [4]byte{b[c1], b[c2], b[c3], b[c4]}
			if ca[0]|ca[1]|ca[2]|ca[3] == 0 && cb[0]|cb[1]|cb[2]|cb[3] == 0 {
				continue
			}
			gf256.MulAddSlice4x2(a, b,
				pivotByCol[c1], pivotByCol[c2], pivotByCol[c3], pivotByCol[c4], ca, cb)
		}
		for ; i < len(cols); i++ {
			c := cols[i]
			if fa, fb := a[c], b[c]; fa|fb != 0 {
				gf256.MulAddSlice1x2(a, b, pivotByCol[c], fa, fb)
			}
		}
	}
	if di < len(dsts) {
		eliminateColsRow(dsts[di], pivotByCol, cols)
	}
}

// eliminateColsRow is the single-destination form: quadruple column gathers
// through MulAddSlice4, pair and scalar tails.
func eliminateColsRow(row []byte, pivotByCol [][]byte, cols []int) {
	i := 0
	for ; i+4 <= len(cols); i += 4 {
		c1, c2, c3, c4 := cols[i], cols[i+1], cols[i+2], cols[i+3]
		f1, f2, f3, f4 := row[c1], row[c2], row[c3], row[c4]
		if f1|f2|f3|f4 == 0 {
			continue
		}
		gf256.MulAddSlice4(row,
			pivotByCol[c1], pivotByCol[c2], pivotByCol[c3], pivotByCol[c4], f1, f2, f3, f4)
	}
	if i+2 <= len(cols) {
		c1, c2 := cols[i], cols[i+1]
		if f1, f2 := row[c1], row[c2]; f1|f2 != 0 {
			gf256.MulAddSlice2(row, pivotByCol[c1], pivotByCol[c2], f1, f2)
		}
		i += 2
	}
	for ; i < len(cols); i++ {
		c := cols[i]
		if f := row[c]; f != 0 {
			gf256.MulAddSlice(row, pivotByCol[c], f)
		}
	}
}

// backSubPivot eliminates the freshly created pivot column out of the rows
// this batch created earlier (listed by column in cols), two rows per source
// pass through the dual-destination kernel.
func backSubPivot(rowForPivot [][]byte, cols []int, pivotRow []byte, pivot int) {
	var pending []byte
	var pendingF byte
	for _, c := range cols {
		pr := rowForPivot[c]
		f := pr[pivot]
		if f == 0 {
			continue
		}
		if pending == nil {
			pending, pendingF = pr, f
			continue
		}
		gf256.MulAddSlice1x2(pending, pr, pivotRow, pendingF, f)
		pending = nil
	}
	if pending != nil {
		gf256.MulAddSlice(pending, pivotRow, pendingF)
	}
}
