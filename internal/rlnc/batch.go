package rlnc

import "errors"

// ErrRankDeficient reports that a batch of coded blocks does not span the
// segment.
var ErrRankDeficient = errors.New("rlnc: coded blocks are rank deficient")

// BatchDecoder implements the two-stage offline decoder of the paper's
// multi-segment scheme (Sec. 5.2): collect coded blocks, compute C⁻¹ by
// Gauss–Jordan elimination on [C | I] (stage 1), then recover the source
// blocks with a dense GF multiplication b = C⁻¹·x (stage 2). Compared to
// the progressive Decoder it defers all work to Decode, which is the shape
// that parallelizes across segments. Decode routes through DecodeTwoStage
// (twostage.go), so all stage work runs on the fused kernels.
type BatchDecoder struct {
	params  Params
	segID   uint32
	haveSeg bool
	blocks  []*CodedBlock

	// scr, when set via WithScratch, is the workspace Decode runs the
	// two-stage pipeline against; otherwise one is drawn from the shared
	// scratch pool per Decode call.
	scr *Scratch
}

// NewBatchDecoder returns an empty batch decoder. WithScratch makes Decode
// run against a caller-owned workspace.
func NewBatchDecoder(p Params, opts ...DecoderOption) (*BatchDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	return &BatchDecoder{params: p, scr: cfg.scratch}, nil
}

// Add stores one coded block for later decoding. Blocks beyond the first n
// are retained (Decode uses the first linearly independent spanning subset),
// so over-collection is harmless.
func (d *BatchDecoder) Add(b *CodedBlock) error {
	if err := b.Validate(d.params); err != nil {
		return err
	}
	if d.haveSeg && b.SegmentID != d.segID {
		return wrongSegmentError(d.segID, b.SegmentID)
	}
	d.segID, d.haveSeg = b.SegmentID, true
	d.blocks = append(d.blocks, b)
	return nil
}

// Count returns the number of stored blocks.
func (d *BatchDecoder) Count() int { return len(d.blocks) }

// Decode recovers the segment, or ErrRankDeficient when the stored blocks
// do not span it. Subset selection (the first spanning subset in arrival
// order) happens inside the two-stage pipeline's forward sweep.
func (d *BatchDecoder) Decode() (*Segment, error) {
	if d.scr != nil {
		return decodeTwoStageWith(d.scr, d.params, d.blocks)
	}
	return DecodeTwoStage(d.params, d.blocks)
}
