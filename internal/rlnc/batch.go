package rlnc

import (
	"errors"
	"fmt"

	"extremenc/internal/gf256"
	"extremenc/internal/matrix"
)

// ErrRankDeficient reports that a batch of coded blocks does not span the
// segment.
var ErrRankDeficient = errors.New("rlnc: coded blocks are rank deficient")

// BatchDecoder implements the two-stage offline decoder of the paper's
// multi-segment scheme (Sec. 5.2): collect coded blocks, compute C⁻¹ by
// Gauss–Jordan elimination on [C | I] (stage 1), then recover the source
// blocks with a dense GF multiplication b = C⁻¹·x (stage 2). Compared to
// the progressive Decoder it defers all work to Decode, which is the shape
// that parallelizes across segments.
type BatchDecoder struct {
	params  Params
	segID   uint32
	haveSeg bool
	blocks  []*CodedBlock
}

// NewBatchDecoder returns an empty batch decoder.
func NewBatchDecoder(p Params) (*BatchDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &BatchDecoder{params: p}, nil
}

// Add stores one coded block for later decoding. Blocks beyond the first n
// are retained (Decode uses the first linearly independent spanning subset),
// so over-collection is harmless.
func (d *BatchDecoder) Add(b *CodedBlock) error {
	if err := b.Validate(d.params); err != nil {
		return err
	}
	if d.haveSeg && b.SegmentID != d.segID {
		return fmt.Errorf("%w: have %d, got %d", ErrWrongSegment, d.segID, b.SegmentID)
	}
	d.segID, d.haveSeg = b.SegmentID, true
	d.blocks = append(d.blocks, b)
	return nil
}

// Count returns the number of stored blocks.
func (d *BatchDecoder) Count() int { return len(d.blocks) }

// Decode recovers the segment, or ErrRankDeficient when the stored blocks
// do not span it.
func (d *BatchDecoder) Decode() (*Segment, error) {
	n, k := d.params.BlockCount, d.params.BlockSize
	rows := d.spanningSubset()
	if len(rows) < n {
		return nil, fmt.Errorf("%w: rank %d of %d from %d blocks",
			ErrRankDeficient, len(rows), n, len(d.blocks))
	}

	// Stage 1: invert the coefficient matrix via [C | I].
	c := matrix.New(n, n)
	for i, b := range rows {
		copy(c.Row(i), b.Coeffs)
	}
	inv, err := c.Inverse()
	if err != nil {
		return nil, fmt.Errorf("rlnc: %w", err)
	}

	// Stage 2: b = C⁻¹ · x, an encode-like dense multiplication — run
	// through the tiled batch kernel so all n source blocks materialize in
	// one fused pass over the received payloads.
	seg, err := NewSegment(d.segID, d.params)
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, n)
	crows := make([][]byte, n)
	for i := 0; i < n; i++ {
		payloads[i] = rows[i].Payload
		crows[i] = inv.Row(i)
	}
	encodeBatchRange(seg.Blocks(), payloads, crows, 0, k)
	return seg, nil
}

// spanningSubset selects up to n stored blocks with linearly independent
// coefficient vectors, in arrival order, using an incremental elimination
// probe (one O(n²) pass over all stored blocks).
func (d *BatchDecoder) spanningSubset() []*CodedBlock {
	n := d.params.BlockCount
	pivotRows := make([][]byte, n)
	subset := make([]*CodedBlock, 0, n)
	for _, b := range d.blocks {
		if len(subset) == n {
			break
		}
		row := append([]byte(nil), b.Coeffs...)
		pivot := -1
		for c := 0; c < n; c++ {
			f := row[c]
			if f == 0 {
				continue
			}
			if pr := pivotRows[c]; pr != nil {
				gf256.MulAddSlice(row, pr, f)
				continue
			}
			pivot = c
			break
		}
		if pivot < 0 {
			continue
		}
		if pv := row[pivot]; pv != 1 {
			gf256.ScaleSlice(row, gf256.Inv(pv))
		}
		pivotRows[pivot] = row
		subset = append(subset, b)
	}
	return subset
}
