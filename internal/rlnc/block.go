package rlnc

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire format of a coded block (all integers big-endian):
//
//	offset  size  field
//	0       4     magic "XNC1"
//	4       4     segment ID
//	8       4     block count n
//	12      4     block size k
//	16      n     coefficient vector
//	16+n    k     coded payload
//	16+n+k  4     CRC-32 (IEEE) over everything above
const (
	wireMagic      = "XNC1"
	wireHeaderLen  = 16
	wireTrailerLen = 4
)

// Errors returned by UnmarshalBinary.
var (
	ErrBadMagic    = errors.New("rlnc: bad coded-block magic")
	ErrBadChecksum = errors.New("rlnc: coded-block checksum mismatch")
	ErrTruncated   = errors.New("rlnc: truncated coded block")
)

// CodedBlock is one network-coded packet: the coefficient vector c and the
// payload x = Σ c_i·b_i over the source blocks of one segment (Eq. 1).
type CodedBlock struct {
	SegmentID uint32
	Coeffs    []byte
	Payload   []byte
}

var (
	_ encoding.BinaryMarshaler   = (*CodedBlock)(nil)
	_ encoding.BinaryUnmarshaler = (*CodedBlock)(nil)
)

// Params returns the (n, k) configuration implied by the block's shape.
func (b *CodedBlock) Params() Params {
	return Params{BlockCount: len(b.Coeffs), BlockSize: len(b.Payload)}
}

// Validate checks the block against an expected configuration.
func (b *CodedBlock) Validate(p Params) error {
	if len(b.Coeffs) != p.BlockCount {
		return fmt.Errorf("%w: %d coefficients, want %d", ErrBlockShape, len(b.Coeffs), p.BlockCount)
	}
	if len(b.Payload) != p.BlockSize {
		return fmt.Errorf("%w: %d payload bytes, want %d", ErrBlockShape, len(b.Payload), p.BlockSize)
	}
	return nil
}

// Clone returns a deep copy.
func (b *CodedBlock) Clone() *CodedBlock {
	return &CodedBlock{
		SegmentID: b.SegmentID,
		Coeffs:    append([]byte(nil), b.Coeffs...),
		Payload:   append([]byte(nil), b.Payload...),
	}
}

// WireSize returns the marshaled length of the block.
func (b *CodedBlock) WireSize() int {
	return wireHeaderLen + len(b.Coeffs) + len(b.Payload) + wireTrailerLen
}

// MarshalBinary encodes the block in the wire format above.
func (b *CodedBlock) MarshalBinary() ([]byte, error) {
	if err := b.Params().Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, b.WireSize())
	copy(out, wireMagic)
	binary.BigEndian.PutUint32(out[4:], b.SegmentID)
	binary.BigEndian.PutUint32(out[8:], uint32(len(b.Coeffs)))
	binary.BigEndian.PutUint32(out[12:], uint32(len(b.Payload)))
	copy(out[wireHeaderLen:], b.Coeffs)
	copy(out[wireHeaderLen+len(b.Coeffs):], b.Payload)
	sum := crc32.ChecksumIEEE(out[:len(out)-wireTrailerLen])
	binary.BigEndian.PutUint32(out[len(out)-wireTrailerLen:], sum)
	return out, nil
}

// UnmarshalBinary decodes a block from the wire format, validating magic,
// lengths and checksum.
func (b *CodedBlock) UnmarshalBinary(data []byte) error {
	if len(data) < wireHeaderLen+wireTrailerLen {
		return ErrTruncated
	}
	if string(data[:4]) != wireMagic {
		return ErrBadMagic
	}
	n := int(binary.BigEndian.Uint32(data[8:]))
	k := int(binary.BigEndian.Uint32(data[12:]))
	p := Params{BlockCount: n, BlockSize: k}
	if err := p.Validate(); err != nil {
		return err
	}
	want := wireHeaderLen + n + k + wireTrailerLen
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrTruncated, len(data), want)
	}
	sum := crc32.ChecksumIEEE(data[:len(data)-wireTrailerLen])
	if sum != binary.BigEndian.Uint32(data[len(data)-wireTrailerLen:]) {
		return ErrBadChecksum
	}
	b.SegmentID = binary.BigEndian.Uint32(data[4:])
	b.Coeffs = append(b.Coeffs[:0], data[wireHeaderLen:wireHeaderLen+n]...)
	b.Payload = append(b.Payload[:0], data[wireHeaderLen+n:wireHeaderLen+n+k]...)
	return nil
}
