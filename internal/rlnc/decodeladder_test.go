package rlnc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"extremenc/internal/gf256"
)

// Differential coverage for the decode ladder: the batched absorb path and
// the two-stage pipeline must recover byte-identical segments to the
// progressive scalar Decoder for any arrival order, with dependent arrivals
// injected, across degenerate and paper-sized shapes.

// dependentMix returns a coded block that is a random GF combination of two
// already-sent blocks — linearly dependent by construction.
func dependentMix(rng *rand.Rand, a, b *CodedBlock) *CodedBlock {
	fa, fb := byte(1+rng.Intn(255)), byte(rng.Intn(256))
	out := &CodedBlock{
		SegmentID: a.SegmentID,
		Coeffs:    make([]byte, len(a.Coeffs)),
		Payload:   make([]byte, len(a.Payload)),
	}
	gf256.MulAddSlice(out.Coeffs, a.Coeffs, fa)
	gf256.MulAddSlice(out.Payload, a.Payload, fa)
	gf256.MulAddSlice(out.Coeffs, b.Coeffs, fb)
	gf256.MulAddSlice(out.Payload, b.Payload, fb)
	return out
}

// ladderArrivals builds a shuffled arrival stream for one segment: n+extra
// encoder blocks plus injected dependent combinations.
func ladderArrivals(rng *rand.Rand, seg *Segment, extra, dependents int) []*CodedBlock {
	enc := NewEncoder(seg, rng)
	n := seg.Params().BlockCount
	blocks := make([]*CodedBlock, 0, n+extra+dependents)
	for i := 0; i < n+extra; i++ {
		blocks = append(blocks, enc.NextBlock())
	}
	for i := 0; i < dependents; i++ {
		a := blocks[rng.Intn(len(blocks))]
		b := blocks[rng.Intn(len(blocks))]
		blocks = append(blocks, dependentMix(rng, a, b))
	}
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	return blocks
}

// TestDecodeLadderDifferential drives every decode rung over the same
// arrival streams and demands byte-identical recovered segments — and, for
// the two progressive paths, identical internal RREF state and dependence
// accounting.
func TestDecodeLadderDifferential(t *testing.T) {
	for _, n := range []int{1, 2, 60, 128} {
		for trial := 0; trial < 3; trial++ {
			p := Params{BlockCount: n, BlockSize: 72 + trial}
			rng := rand.New(rand.NewSource(int64(1000*n + trial)))
			data := make([]byte, p.SegmentSize())
			rng.Read(data)
			seg, err := SegmentFromData(7, p, data)
			if err != nil {
				t.Fatal(err)
			}
			blocks := ladderArrivals(rng, seg, 2, 1+n/16)

			// Reference: progressive scalar AddBlock, one arrival at a time.
			ref, err := NewDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			refInnov := 0
			for _, b := range blocks {
				innov, err := ref.AddBlock(b)
				if err != nil {
					t.Fatal(err)
				}
				if innov {
					refInnov++
				}
			}
			refSeg, err := ref.Segment()
			if err != nil {
				t.Fatalf("n=%d trial=%d: reference decode: %v", n, trial, err)
			}
			if !refSeg.Equal(seg) {
				t.Fatalf("n=%d trial=%d: reference decoded corrupt segment", n, trial)
			}

			// Batched absorb at several chunk sizes, including chunks larger
			// than the remaining stream.
			for _, chunk := range []int{1, 2, 5, len(blocks)} {
				dec, err := NewDecoder(p)
				if err != nil {
					t.Fatal(err)
				}
				gotInnov := 0
				for lo := 0; lo < len(blocks); lo += chunk {
					hi := min(lo+chunk, len(blocks))
					innov, err := dec.AddBlocks(blocks[lo:hi])
					if err != nil {
						t.Fatal(err)
					}
					gotInnov += innov
				}
				if gotInnov != refInnov || dec.Rank() != ref.Rank() ||
					dec.Dependent() != ref.Dependent() || dec.Received() != ref.Received() {
					t.Fatalf("n=%d trial=%d chunk=%d: accounting diverges: innovative %d/%d rank %d/%d dependent %d/%d received %d/%d",
						n, trial, chunk, gotInnov, refInnov, dec.Rank(), ref.Rank(),
						dec.Dependent(), ref.Dependent(), dec.Received(), ref.Received())
				}
				// The batched schedule must land on the exact same RREF rows,
				// not merely an equivalent basis.
				for c := 0; c < n; c++ {
					if !bytes.Equal(dec.rowForPivot[c], ref.rowForPivot[c]) {
						t.Fatalf("n=%d trial=%d chunk=%d: RREF row %d diverges from scalar path", n, trial, chunk, c)
					}
				}
				got, err := dec.Segment()
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(refSeg) {
					t.Fatalf("n=%d trial=%d chunk=%d: batched absorb segment diverges", n, trial, chunk)
				}
			}

			// Two-stage pipeline, directly and through BatchDecoder.
			twoStage, err := DecodeTwoStage(p, blocks)
			if err != nil {
				t.Fatalf("n=%d trial=%d: two-stage decode: %v", n, trial, err)
			}
			if !twoStage.Equal(refSeg) {
				t.Fatalf("n=%d trial=%d: two-stage segment diverges", n, trial)
			}
			bd, err := NewBatchDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range blocks {
				if err := bd.Add(b); err != nil {
					t.Fatal(err)
				}
			}
			bdSeg, err := bd.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if !bdSeg.Equal(refSeg) {
				t.Fatalf("n=%d trial=%d: BatchDecoder segment diverges", n, trial)
			}
		}
	}
}

// TestAddBlocksRejectsBatchAtomically pins the transactional contract: a
// batch containing an invalid or wrong-segment block absorbs nothing.
func TestAddBlocksRejectsBatchAtomically(t *testing.T) {
	p := Params{BlockCount: 4, BlockSize: 32}
	rng := rand.New(rand.NewSource(41))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(3, p, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	good := []*CodedBlock{enc.NextBlock(), enc.NextBlock()}

	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := enc.NextBlock()
	bad.Coeffs = bad.Coeffs[:3]
	if _, err := dec.AddBlocks([]*CodedBlock{good[0], bad}); err == nil {
		t.Fatal("batch with malformed block accepted")
	}
	wrongSeg := enc.NextBlock()
	wrongSeg.SegmentID = 9
	if _, err := dec.AddBlocks([]*CodedBlock{good[0], wrongSeg}); err == nil {
		t.Fatal("batch with wrong-segment block accepted before any absorb")
	}
	if dec.Rank() != 0 || dec.Received() != 0 {
		t.Fatalf("rejected batches mutated decoder state: rank %d received %d", dec.Rank(), dec.Received())
	}
	if _, err := dec.AddBlocks(good); err != nil {
		t.Fatal(err)
	}
	if dec.Rank() != 2 || dec.Received() != 2 {
		t.Fatalf("valid batch misabsorbed: rank %d received %d", dec.Rank(), dec.Received())
	}
	// Wrong-segment rejection must also hold against the established stream.
	if _, err := dec.AddBlocks([]*CodedBlock{wrongSeg}); err == nil {
		t.Fatal("wrong-segment batch accepted after absorb")
	}
}

// TestDecodeTwoStageRankDeficient pins the error path when blocks cannot
// span the segment.
func TestDecodeTwoStageRankDeficient(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 16}
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	blocks := []*CodedBlock{enc.NextBlock(), enc.NextBlock()}
	blocks = append(blocks, dependentMix(rng, blocks[0], blocks[1]))
	if _, err := DecodeTwoStage(p, blocks); err == nil {
		t.Fatal("rank-deficient block set decoded")
	}
}

// BenchmarkDecodeLadder measures the decode-side optimization ladder at the
// paper's streaming configuration (n=128, k=4096): the progressive scalar
// decoder (seed shape), the batched fused absorb, the Gaussian decoder with
// deferred back-substitution, and the two-stage invert-then-multiply
// pipeline. Throughput is decoded source bytes per second, so rungs are
// directly comparable.
func BenchmarkDecodeLadder(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	rng := rand.New(rand.NewSource(51))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		b.Fatal(err)
	}
	blocks := ladderArrivals(rng, seg, 2, 0)
	segBytes := int64(p.SegmentSize())

	check := func(b *testing.B, got *Segment, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(seg) {
			b.Fatal("decoded segment diverges from source")
		}
	}

	b.Run("progressive-scalar", func(b *testing.B) {
		b.SetBytes(segBytes)
		for i := 0; i < b.N; i++ {
			dec, err := NewDecoder(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				if _, err := dec.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
				if dec.Ready() {
					break
				}
			}
			got, err := dec.Segment()
			check(b, got, err)
		}
	})
	for _, chunk := range []int{8, 32} {
		// Named b=<chunk> (not a -<chunk> suffix): benchjson strips a trailing
		// -<int> as the GOMAXPROCS tag.
		b.Run(fmt.Sprintf("progressive-batched/b=%d", chunk), func(b *testing.B) {
			b.SetBytes(segBytes)
			for i := 0; i < b.N; i++ {
				dec, err := NewDecoder(p)
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(blocks) && !dec.Ready(); lo += chunk {
					hi := min(lo+chunk, len(blocks))
					if _, err := dec.AddBlocks(blocks[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
				got, err := dec.Segment()
				check(b, got, err)
			}
		})
	}
	b.Run("gaussian-deferred", func(b *testing.B) {
		b.SetBytes(segBytes)
		for i := 0; i < b.N; i++ {
			dec, err := NewGaussianDecoder(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				if _, err := dec.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
				if dec.Ready() {
					break
				}
			}
			got, err := dec.Segment()
			check(b, got, err)
		}
	})
	b.Run("two-stage", func(b *testing.B) {
		b.SetBytes(segBytes)
		for i := 0; i < b.N; i++ {
			got, err := DecodeTwoStage(p, blocks)
			check(b, got, err)
		}
	})
}
