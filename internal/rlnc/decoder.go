package rlnc

import (
	"errors"
	"fmt"

	"extremenc/internal/gf256"
	"extremenc/internal/obs"
)

// stageXorAbsorb times one XOR-only (GF(2) fast path) absorb. Free when no
// obs sink is installed; its sample count is how operators confirm the fast
// path is actually running (see cmd/ncserve xor-smoke).
var stageXorAbsorb = obs.StageOf("rlnc.xor_absorb")

// Decoding errors.
var (
	ErrNotReady     = errors.New("rlnc: decoder does not hold a full-rank set yet")
	ErrWrongSegment = errors.New("rlnc: coded block belongs to a different segment")
)

// Decoder recovers a segment from coded blocks by progressive Gauss–Jordan
// elimination (paper Sec. 3). Each arriving block is reduced against the
// rows held so far; a block that reduces to all zeros is linearly dependent
// and is discarded — no explicit dependence check is needed. Rows are kept
// in reduced row-echelon form over the aggregate [C | x] matrix, so once
// rank reaches n the payload columns already hold the source blocks.
type Decoder struct {
	params  Params
	segID   uint32
	haveSeg bool

	// rowForPivot[c] is the aggregate row (n coefficient bytes followed by k
	// payload bytes) whose pivot is column c, or nil.
	rowForPivot [][]byte
	rank        int

	received  int
	dependent int

	// xorOnly gates the GF(2) elimination fast path: true while every
	// absorbed block has had a 0/1 coefficient vector. XOR-eliminating
	// binary rows against binary rows keeps every stored row binary (GF(2^8)
	// addition is XOR), so the invariant survives arbitrarily many fast-path
	// absorbs; the first dense arrival clears it permanently and the decoder
	// drops into the general table-driven machinery.
	xorOnly bool

	// scr is the decoder's reusable workspace for the batched absorb path,
	// drawn lazily from the shared scratch pool.
	scr *Scratch
}

// NewDecoder returns an empty decoder for the given configuration. Options
// follow the unified constructor-option shape: WithScratch pins the batched
// absorb path to a caller-owned workspace instead of the shared pool.
func NewDecoder(p Params, opts ...DecoderOption) (*Decoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	return &Decoder{
		params:      p,
		rowForPivot: make([][]byte, p.BlockCount),
		xorOnly:     true,
		scr:         cfg.scratch,
	}, nil
}

// Params returns the coding configuration.
func (d *Decoder) Params() Params { return d.params }

// scratch returns the decoder's workspace, drawing one from the shared pool
// on first use. It is held for the decoder's lifetime, so repeated AddBlocks
// calls reuse the same staging storage.
func (d *Decoder) scratch() *Scratch {
	if d.scr == nil {
		d.scr = GetScratch()
	}
	return d.scr
}

func wrongSegmentError(have, got uint32) error {
	return fmt.Errorf("%w: have %d, got %d", ErrWrongSegment, have, got)
}

// Rank returns the number of linearly independent blocks absorbed so far.
func (d *Decoder) Rank() int { return d.rank }

// Ready reports whether the segment can be recovered.
func (d *Decoder) Ready() bool { return d.rank == d.params.BlockCount }

// Received returns how many blocks were offered to AddBlock.
func (d *Decoder) Received() int { return d.received }

// Dependent returns how many offered blocks were linearly dependent.
func (d *Decoder) Dependent() int { return d.dependent }

// AddBlock absorbs one coded block. It returns true when the block was
// innovative (increased rank) and false when it was linearly dependent with
// blocks already held. Blocks for a different segment are rejected.
func (d *Decoder) AddBlock(b *CodedBlock) (innovative bool, err error) {
	if err := b.Validate(d.params); err != nil {
		return false, err
	}
	if d.haveSeg && b.SegmentID != d.segID {
		return false, wrongSegmentError(d.segID, b.SegmentID)
	}
	d.segID, d.haveSeg = b.SegmentID, true
	d.received++

	if d.xorOnly {
		if b.IsBinary() {
			return d.addBlockXor(b)
		}
		// First dense arrival: leave the GF(2) fast path for good.
		d.xorOnly = false
	}

	n, k := d.params.BlockCount, d.params.BlockSize
	row := make([]byte, n+k)
	copy(row, b.Coeffs)
	copy(row[n:], b.Payload)

	// Forward-reduce against every existing pivot and find this row's pivot
	// (the first non-zero entry in a pivot-free column). The sweep must
	// continue past the pivot: with out-of-order pivots (sparse vectors) the
	// row can still hold entries in later columns that are already pivoted,
	// and full RREF requires those eliminated too. Stored pivot rows are
	// normalized (pivot entry 1), so adding f·pivotRow cancels column c.
	pivot := -1
	for c := 0; c < n; c++ {
		f := row[c]
		if f == 0 {
			continue
		}
		if pr := d.rowForPivot[c]; pr != nil {
			gf256.MulAddSlice(row, pr, f)
			continue
		}
		if pivot < 0 {
			pivot = c
		}
	}
	if pivot < 0 {
		// Reduced to a zero coefficient row: linearly dependent (Sec. 3).
		d.dependent++
		return false, nil
	}

	if pv := row[pivot]; pv != 1 {
		gf256.ScaleSlice(row, gf256.Inv(pv))
	}
	// Back-substitute the new pivot out of every existing row to maintain
	// full reduced row-echelon form, one scalar row operation per stored row.
	// This per-arrival path is deliberately kept in the seed's unfused shape:
	// it is the "progressive scalar" rung of the decode ladder that the fused
	// batched path (AddBlocks) is measured against.
	for c := 0; c < n; c++ {
		pr := d.rowForPivot[c]
		if pr == nil {
			continue
		}
		if f := pr[pivot]; f != 0 {
			gf256.MulAddSlice(pr, row, f)
		}
	}
	d.rowForPivot[pivot] = row
	d.rank++
	return true, nil
}

// addBlockXor is the GF(2) elimination fast path: the arriving block and
// every stored row are binary (xorOnly invariant), so every elimination
// factor is 1 and the whole absorb is pure wide-word XOR — no log/exp or
// product tables, no MulAddSlice, no pivot normalization (a binary pivot
// entry is already 1). The resulting rows are byte-identical to what the
// general path would produce, because MulAddSlice with coefficient 1 *is*
// XorSlice; only the arithmetic dispatched differs. The caller has already
// validated the block and counted it received.
func (d *Decoder) addBlockXor(b *CodedBlock) (innovative bool, err error) {
	defer stageXorAbsorb.Start().End()
	n, k := d.params.BlockCount, d.params.BlockSize
	row := make([]byte, n+k)
	copy(row, b.Coeffs)
	copy(row[n:], b.Payload)

	// Forward-reduce: any non-zero entry in a pivoted column is 1, so the
	// row operation is a plain XOR of the stored pivot row.
	pivot := -1
	for c := 0; c < n; c++ {
		if row[c] == 0 {
			continue
		}
		if pr := d.rowForPivot[c]; pr != nil {
			gf256.XorSlice(row, pr)
			continue
		}
		if pivot < 0 {
			pivot = c
		}
	}
	if pivot < 0 {
		d.dependent++
		return false, nil
	}
	// Back-substitute the new pivot out of every stored row; stored entries
	// at the pivot column are 0 or 1, so again each operation is one XOR.
	for c := 0; c < n; c++ {
		pr := d.rowForPivot[c]
		if pr == nil {
			continue
		}
		if pr[pivot] != 0 {
			gf256.XorSlice(pr, row)
		}
	}
	d.rowForPivot[pivot] = row
	d.rank++
	return true, nil
}

// Segment returns the recovered segment. It fails with ErrNotReady until
// rank n is reached.
func (d *Decoder) Segment() (*Segment, error) {
	if !d.Ready() {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrNotReady, d.rank, d.params.BlockCount)
	}
	seg, err := NewSegment(d.segID, d.params)
	if err != nil {
		return nil, err
	}
	n := d.params.BlockCount
	for i := 0; i < n; i++ {
		copy(seg.Block(i), d.rowForPivot[i][n:])
	}
	return seg, nil
}

// Block returns decoded source block i once available. With full RREF rows,
// source block i is recoverable as soon as row i's coefficient part has
// collapsed to the unit vector — useful for early delivery in streaming.
func (d *Decoder) Block(i int) ([]byte, bool) {
	n := d.params.BlockCount
	if i < 0 || i >= n {
		return nil, false
	}
	row := d.rowForPivot[i]
	if row == nil {
		return nil, false
	}
	for c := 0; c < n; c++ {
		want := byte(0)
		if c == i {
			want = 1
		}
		if row[c] != want {
			return nil, false
		}
	}
	return row[n : n+d.params.BlockSize], true
}
