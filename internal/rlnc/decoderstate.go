package rlnc

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Decoder progress wire format (all integers big-endian):
//
//	offset        size       field
//	0             4          magic "XNCD"
//	4             4          version
//	8             4          block count n
//	12            4          block size k
//	16            4          segment ID
//	20            1          flags (bit 0: segment ID bound)
//	21            4          rank
//	25            4          received
//	29            4          dependent
//	33            ceil(n/8)  pivot bitmap (bit c set ⇒ row with pivot c held)
//	…             rank·(n+k) aggregate rows, ascending pivot order
//	end−4         4          CRC-32 (IEEE) over everything above
//
// Serializing mid-decode progress is what makes a fetch resumable across
// process restarts: rank, not bytes, is the unit of progress in RLNC, and
// the RREF rows are exactly the rank held so far.
const (
	decoderStateMagic   = "XNCD"
	decoderStateVersion = 1
	decoderStateFixed   = 4 + 4 + 4 + 4 + 4 + 1 + 4 + 4 + 4
)

// ErrBadDecoderState reports an unusable serialized decoder.
var ErrBadDecoderState = errors.New("rlnc: bad decoder state")

var (
	_ encoding.BinaryMarshaler   = (*Decoder)(nil)
	_ encoding.BinaryUnmarshaler = (*Decoder)(nil)
)

// MarshalBinary serializes the decoder's progress — parameters, counters,
// and the reduced rows held so far — so decoding can resume later, in
// another process, from the same rank.
func (d *Decoder) MarshalBinary() ([]byte, error) {
	n, k := d.params.BlockCount, d.params.BlockSize
	bitmapLen := (n + 7) / 8
	out := make([]byte, decoderStateFixed+bitmapLen+d.rank*(n+k)+4)
	copy(out, decoderStateMagic)
	binary.BigEndian.PutUint32(out[4:], decoderStateVersion)
	binary.BigEndian.PutUint32(out[8:], uint32(n))
	binary.BigEndian.PutUint32(out[12:], uint32(k))
	binary.BigEndian.PutUint32(out[16:], d.segID)
	if d.haveSeg {
		out[20] = 1
	}
	binary.BigEndian.PutUint32(out[21:], uint32(d.rank))
	binary.BigEndian.PutUint32(out[25:], uint32(d.received))
	binary.BigEndian.PutUint32(out[29:], uint32(d.dependent))
	bitmap := out[decoderStateFixed : decoderStateFixed+bitmapLen]
	off := decoderStateFixed + bitmapLen
	for c := 0; c < n; c++ {
		row := d.rowForPivot[c]
		if row == nil {
			continue
		}
		bitmap[c/8] |= 1 << (c % 8)
		copy(out[off:], row)
		off += n + k
	}
	binary.BigEndian.PutUint32(out[off:], crc32.ChecksumIEEE(out[:off]))
	return out, nil
}

// UnmarshalBinary restores a decoder from MarshalBinary output, replacing
// any existing state. Beyond the checksum it verifies the structural
// invariant the elimination depends on: every stored row is normalized
// (entry 1 at its own pivot) and eliminated against every other pivot
// column, i.e. the rows really are in reduced row-echelon form.
func (d *Decoder) UnmarshalBinary(data []byte) error {
	if len(data) < decoderStateFixed+4 {
		return fmt.Errorf("%w: %d bytes", ErrBadDecoderState, len(data))
	}
	if string(data[:4]) != decoderStateMagic {
		return fmt.Errorf("%w: magic", ErrBadDecoderState)
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != decoderStateVersion {
		return fmt.Errorf("%w: version %d", ErrBadDecoderState, v)
	}
	p := Params{
		BlockCount: int(binary.BigEndian.Uint32(data[8:])),
		BlockSize:  int(binary.BigEndian.Uint32(data[12:])),
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDecoderState, err)
	}
	n, k := p.BlockCount, p.BlockSize
	bitmapLen := (n + 7) / 8
	rank := int(binary.BigEndian.Uint32(data[21:]))
	if rank < 0 || rank > n {
		return fmt.Errorf("%w: rank %d of %d", ErrBadDecoderState, rank, n)
	}
	want := decoderStateFixed + bitmapLen + rank*(n+k) + 4
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrBadDecoderState, len(data), want)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return fmt.Errorf("%w: checksum", ErrBadDecoderState)
	}

	bitmap := data[decoderStateFixed : decoderStateFixed+bitmapLen]
	pivots := make([]int, 0, rank)
	for c := 0; c < n; c++ {
		if bitmap[c/8]&(1<<(c%8)) != 0 {
			pivots = append(pivots, c)
		}
	}
	if len(pivots) != rank {
		return fmt.Errorf("%w: bitmap holds %d pivots, rank says %d", ErrBadDecoderState, len(pivots), rank)
	}
	rows := make([][]byte, n)
	off := decoderStateFixed + bitmapLen
	for _, c := range pivots {
		row := make([]byte, n+k)
		copy(row, data[off:off+n+k])
		off += n + k
		if row[c] != 1 {
			return fmt.Errorf("%w: pivot %d not normalized", ErrBadDecoderState, c)
		}
		for _, c2 := range pivots {
			if c2 != c && row[c2] != 0 {
				return fmt.Errorf("%w: pivot %d not eliminated from row %d", ErrBadDecoderState, c2, c)
			}
		}
		rows[c] = row
	}

	d.params = p
	d.segID = binary.BigEndian.Uint32(data[16:])
	d.haveSeg = data[20]&1 != 0
	d.rowForPivot = rows
	d.rank = rank
	d.received = int(binary.BigEndian.Uint32(data[25:]))
	d.dependent = int(binary.BigEndian.Uint32(data[29:]))
	// Recompute the GF(2) fast-path gate from the restored rows: the state
	// blob predates the xorOnly flag, and the stored rows are the ground
	// truth anyway — all-binary rows are exactly the invariant the XOR-only
	// elimination path requires, so a resumed systematic session picks the
	// fast path back up. (A decoder that went dense then back to rank 0 is
	// unrepresentable: dense rows persist until decode completes.)
	d.xorOnly = true
	for _, c := range pivots {
		for _, v := range rows[c][:n] {
			if v > 1 {
				d.xorOnly = false
				break
			}
		}
		if !d.xorOnly {
			break
		}
	}
	d.scr = nil
	return nil
}
