package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestDecoderStateRoundTrip serializes a decoder mid-decode, restores it,
// finishes decoding on the restored copy, and checks the recovered segment
// is identical to the one the uninterrupted decoder produces.
func TestDecoderStateRoundTrip(t *testing.T) {
	for _, mid := range []int{0, 1, 7, 15} {
		p := Params{BlockCount: 16, BlockSize: 64}
		data := make([]byte, p.SegmentSize())
		rand.New(rand.NewSource(int64(mid) + 1)).Read(data)
		seg, err := SegmentFromData(3, p, data)
		if err != nil {
			t.Fatal(err)
		}
		enc := NewEncoder(seg, rand.New(rand.NewSource(99)))

		direct, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		for resumed.Rank() < mid {
			b := enc.NextBlock()
			if _, err := direct.AddBlock(b); err != nil {
				t.Fatal(err)
			}
			if _, err := resumed.AddBlock(b); err != nil {
				t.Fatal(err)
			}
		}

		state, err := resumed.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored := new(Decoder)
		if err := restored.UnmarshalBinary(state); err != nil {
			t.Fatalf("mid=%d: %v", mid, err)
		}
		if restored.Rank() != mid || restored.Received() != resumed.Received() ||
			restored.Dependent() != resumed.Dependent() {
			t.Fatalf("mid=%d: counters differ after restore: rank %d recv %d dep %d",
				mid, restored.Rank(), restored.Received(), restored.Dependent())
		}

		for !restored.Ready() {
			b := enc.NextBlock()
			if _, err := direct.AddBlock(b); err != nil {
				t.Fatal(err)
			}
			if _, err := restored.AddBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		want, err := direct.Segment()
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Segment()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data(), want.Data()) {
			t.Fatalf("mid=%d: restored decoder recovered different payload", mid)
		}
	}
}

// TestDecoderStateReady round-trips a full-rank decoder.
func TestDecoderStateReady(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	data := make([]byte, p.SegmentSize())
	rand.New(rand.NewSource(5)).Read(data)
	seg, err := SegmentFromData(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rand.New(rand.NewSource(6)))
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	state, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := new(Decoder)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	if !restored.Ready() {
		t.Fatal("restored decoder not ready")
	}
	got, err := restored.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), seg.Data()) {
		t.Fatal("restored payload differs")
	}
}

// TestDecoderStateRejectsDamage: every single-byte flip of a valid state
// blob must be rejected (the CRC covers everything), as must truncation and
// structural lies.
func TestDecoderStateRejectsDamage(t *testing.T) {
	p := Params{BlockCount: 4, BlockSize: 16}
	data := make([]byte, p.SegmentSize())
	rand.New(rand.NewSource(7)).Read(data)
	seg, err := SegmentFromData(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rand.New(rand.NewSource(8)))
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for dec.Rank() < 2 {
		if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	state, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for i := range state {
		bad := append([]byte(nil), state...)
		bad[i] ^= 0x41
		if err := new(Decoder).UnmarshalBinary(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for _, cut := range []int{0, 4, len(state) - 1} {
		if err := new(Decoder).UnmarshalBinary(state[:cut]); !errors.Is(err, ErrBadDecoderState) {
			t.Fatalf("truncation to %d: err = %v, want ErrBadDecoderState", cut, err)
		}
	}
}
