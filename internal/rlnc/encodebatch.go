package rlnc

import (
	"fmt"

	"extremenc/internal/gf256"
	"extremenc/internal/obs"
)

// stageEncodeBatch times one batch-encode call (not one gf256 kernel call:
// the wide-word kernels run thousands of times per batch and are benched,
// not spanned). Free when no obs sink is installed.
var stageEncodeBatch = obs.StageOf("rlnc.encode_batch")

// Tiled batch encoding: the host-codec analogue of the paper's full-block
// streaming-server scheme (Sec. 5.3), made cache-aware. Producing B coded
// payloads in one pass over the source blocks lets every source tile loaded
// from memory be reused B times, and the fused gf256 kernels apply four
// coefficient·source pairs per destination word load/store. Together these
// replace the seed path's one-block-at-a-time Σ cᵢ·bᵢ loop, which streamed
// the whole segment from memory once per coded block.

const (
	// encodeTile is the column-tile width in bytes. A fused inner step
	// touches four source tiles plus one destination tile (5 × encodeTile =
	// 20 KiB), which fits comfortably in a 32 KiB L1d alongside the 256-byte
	// product rows.
	encodeTile = 4096

	// encodeBatchGroup caps how many destinations a single tiled pass
	// accumulates, bounding the hot destination working set to
	// encodeBatchGroup × encodeTile bytes (64 KiB, L2-resident).
	encodeBatchGroup = 16
)

// EncodeBatchInto computes dsts[b] = Σ_i coeffs[b][i]·seg.Block(i) for every
// b in one tiled pass over the source blocks. Each dsts[b] must be at least
// BlockSize long and each coeffs[b] exactly BlockCount long. It is the
// batch-shaped primitive behind the encoder, the parallel workers and the
// batch decoder's reconstruction stage.
func EncodeBatchInto(dsts [][]byte, seg *Segment, coeffs [][]byte) error {
	defer stageEncodeBatch.Start().End()
	p := seg.params
	if len(dsts) != len(coeffs) {
		return fmt.Errorf("%w: %d destinations for %d coefficient vectors", ErrBatchShape, len(dsts), len(coeffs))
	}
	for b := range dsts {
		if len(coeffs[b]) != p.BlockCount {
			return fmt.Errorf("%w: batch row %d has %d coefficients, want %d", ErrBatchShape, b, len(coeffs[b]), p.BlockCount)
		}
		if len(dsts[b]) < p.BlockSize {
			return fmt.Errorf("%w: batch row %d destination %d bytes, want ≥ %d", ErrBatchShape, b, len(dsts[b]), p.BlockSize)
		}
	}
	encodeBatchRange(dsts, seg.Blocks(), coeffs, 0, p.BlockSize)
	return nil
}

// encodeBatchRange clears the [lo, hi) column range of every destination and
// accumulates Σ_j coeffs[b][j]·srcs[j] into it, in destination groups that
// keep the hot working set cache-sized.
func encodeBatchRange(dsts, srcs, coeffs [][]byte, lo, hi int) {
	for _, d := range dsts {
		clear(d[lo:hi])
	}
	for g := 0; g < len(dsts); g += encodeBatchGroup {
		ge := min(g+encodeBatchGroup, len(dsts))
		batchMulAdd(dsts[g:ge], srcs, coeffs[g:ge], lo, hi)
	}
}

// batchMulAdd accumulates dsts[b] ^= Σ_j coeffs[b][j]·srcs[j] over the
// column range [lo, hi), walking cache-sized column tiles. Within a tile the
// source rows are consumed four at a time: a quadruple of source tiles stays
// resident in L1 while it is applied to every destination, and the fused
// kernel touches each destination word once per quadruple. Zero coefficients
// (sparse vectors) are skipped. Destinations must not alias sources.
func batchMulAdd(dsts, srcs, coeffs [][]byte, lo, hi int) {
	n := len(srcs)
	for tlo := lo; tlo < hi; tlo += encodeTile {
		thi := min(tlo+encodeTile, hi)
		j := 0
		for ; j+4 <= n; j += 4 {
			s1 := srcs[j][tlo:thi]
			s2 := srcs[j+1][tlo:thi]
			s3 := srcs[j+2][tlo:thi]
			s4 := srcs[j+3][tlo:thi]
			// Destinations in pairs: the dual-destination kernel loads and
			// extracts each source byte once for both outputs.
			b := 0
			for ; b+2 <= len(coeffs); b += 2 {
				csA, csB := coeffs[b], coeffs[b+1]
				ca := [4]byte{csA[j], csA[j+1], csA[j+2], csA[j+3]}
				cb := [4]byte{csB[j], csB[j+1], csB[j+2], csB[j+3]}
				if ca[0]|ca[1]|ca[2]|ca[3] == 0 && cb[0]|cb[1]|cb[2]|cb[3] == 0 {
					continue
				}
				gf256.MulAddSlice4x2(dsts[b][tlo:thi], dsts[b+1][tlo:thi], s1, s2, s3, s4, ca, cb)
			}
			for ; b < len(coeffs); b++ {
				cs := coeffs[b]
				c1, c2, c3, c4 := cs[j], cs[j+1], cs[j+2], cs[j+3]
				if c1|c2|c3|c4 == 0 {
					continue
				}
				gf256.MulAddSlice4(dsts[b][tlo:thi], s1, s2, s3, s4, c1, c2, c3, c4)
			}
		}
		if j+2 <= n {
			s1 := srcs[j][tlo:thi]
			s2 := srcs[j+1][tlo:thi]
			for b, cs := range coeffs {
				if c1, c2 := cs[j], cs[j+1]; c1|c2 != 0 {
					gf256.MulAddSlice2(dsts[b][tlo:thi], s1, s2, c1, c2)
				}
			}
			j += 2
		}
		if j < n {
			src := srcs[j][tlo:thi]
			for b, cs := range coeffs {
				if c := cs[j]; c != 0 {
					gf256.MulAddSlice(dsts[b][tlo:thi], src, c)
				}
			}
		}
	}
}
