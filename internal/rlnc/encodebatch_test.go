package rlnc

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"extremenc/internal/gf256"
)

// encodeSingleRef reproduces the seed single-block encode shape — one
// MulAddSlice sweep over the whole segment per coded block — as the
// reference both for correctness and for the ladder benchmark baseline.
func encodeSingleRef(dst []byte, seg *Segment, coeffs []byte) {
	k := seg.Params().BlockSize
	clear(dst[:k])
	for i, c := range coeffs {
		if c != 0 {
			gf256.MulAddSlice(dst[:k], seg.Block(i), c)
		}
	}
}

func TestEncodeBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []Params{
		{BlockCount: 1, BlockSize: 1},
		{BlockCount: 2, BlockSize: 7},
		{BlockCount: 3, BlockSize: 257},
		{BlockCount: 4, BlockSize: 64},
		{BlockCount: 5, BlockSize: 33},
		{BlockCount: 7, BlockSize: 4096},
		{BlockCount: 13, BlockSize: 5000}, // crosses a tile boundary
		{BlockCount: 16, BlockSize: 96},
	}
	for _, p := range shapes {
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(1, p, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 2, 3, encodeBatchGroup, encodeBatchGroup + 1, 40} {
			coeffs := make([][]byte, batch)
			dsts := make([][]byte, batch)
			for b := range coeffs {
				coeffs[b] = make([]byte, p.BlockCount)
				rng.Read(coeffs[b])
				if b%3 == 0 && p.BlockCount > 1 {
					coeffs[b][rng.Intn(p.BlockCount)] = 0 // sparse rows too
				}
				dsts[b] = make([]byte, p.BlockSize)
			}
			if err := EncodeBatchInto(dsts, seg, coeffs); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, p.BlockSize)
			for b := range coeffs {
				encodeSingleRef(want, seg, coeffs[b])
				if !bytes.Equal(dsts[b], want) {
					t.Fatalf("%v batch=%d: row %d diverges from single-block encode", p, batch, b)
				}
			}
		}
	}
}

func TestEncodeBatchValidation(t *testing.T) {
	p := Params{BlockCount: 4, BlockSize: 16}
	seg, err := NewSegment(1, p)
	if err != nil {
		t.Fatal(err)
	}
	good := [][]byte{make([]byte, 4)}
	dst := [][]byte{make([]byte, 16)}
	if err := EncodeBatchInto(dst, seg, nil); err == nil {
		t.Fatal("mismatched batch sizes accepted")
	}
	if err := EncodeBatchInto(dst, seg, [][]byte{make([]byte, 3)}); err == nil {
		t.Fatal("short coefficient vector accepted")
	}
	if err := EncodeBatchInto([][]byte{make([]byte, 15)}, seg, good); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := EncodeBatchInto(dst, seg, good); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

// TestEncodeIntoMatchesReference pins the routed-through-batch EncodeInto
// against the explicit seed-shaped loop.
func TestEncodeIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, p := range []Params{{BlockCount: 5, BlockSize: 41}, {BlockCount: 128, BlockSize: 512}} {
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(2, p, data)
		if err != nil {
			t.Fatal(err)
		}
		coeffs := make([]byte, p.BlockCount)
		rng.Read(coeffs)
		coeffs[0] = 0
		got := make([]byte, p.BlockSize)
		EncodeInto(got, seg, coeffs)
		want := make([]byte, p.BlockSize)
		encodeSingleRef(want, seg, coeffs)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: EncodeInto diverges from reference", p)
		}
	}
}

// BenchmarkEncodeBatch measures the tentpole claim at the paper's streaming
// configuration (n=128, k=4096): the tiled batch kernel versus the seed
// single-block path, plus the pool-backed parallel modes.
func BenchmarkEncodeBatch(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	rng := rand.New(rand.NewSource(33))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 32
	coeffs := make([][]byte, batch)
	dsts := make([][]byte, batch)
	for i := range coeffs {
		coeffs[i] = make([]byte, p.BlockCount)
		for j := range coeffs[i] {
			coeffs[i][j] = byte(1 + rng.Intn(255))
		}
		dsts[i] = make([]byte, p.BlockSize)
	}
	bytesPerOp := int64(batch) * int64(p.BlockSize)

	b.Run("single-ref", func(b *testing.B) {
		b.SetBytes(bytesPerOp)
		for i := 0; i < b.N; i++ {
			for j := range dsts {
				encodeSingleRef(dsts[j], seg, coeffs[j])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(bytesPerOp)
		for i := 0; i < b.N; i++ {
			if err := EncodeBatchInto(dsts, seg, coeffs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []EncodeMode{FullBlock, PartitionedBlock} {
		pe, err := NewParallelEncoder(runtime.GOMAXPROCS(0), mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pool-%s", mode), func(b *testing.B) {
			b.SetBytes(bytesPerOp)
			for i := 0; i < b.N; i++ {
				if _, err := pe.Encode(seg, batch, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
