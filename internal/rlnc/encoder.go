package rlnc

import (
	"fmt"
	"math/rand"

	"extremenc/internal/gf256"
)

// Encoder produces coded blocks from one source segment using independently
// and randomly chosen coefficients (paper Sec. 3). The paper's evaluation
// uses fully dense matrices with non-zero coefficients; a Density option
// below 1 produces sparse vectors for the sparse-coding ablation.
type Encoder struct {
	seg     *Segment
	rng     *rand.Rand
	density float64
}

// EncoderOption configures an Encoder.
type EncoderOption func(*Encoder)

// WithDensity sets the probability that each coefficient is non-zero.
// Density 1 (the default) draws every coefficient uniformly from [1, 255],
// matching the paper's fully dense benchmark matrices.
func WithDensity(d float64) EncoderOption {
	return func(e *Encoder) { e.density = d }
}

// NewEncoder returns an encoder over seg driven by rng (which determines the
// coefficient stream; pass a seeded source for reproducibility).
func NewEncoder(seg *Segment, rng *rand.Rand, opts ...EncoderOption) *Encoder {
	e := &Encoder{seg: seg, rng: rng, density: 1}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// NextCoeffs draws a fresh coefficient vector.
func (e *Encoder) NextCoeffs() []byte {
	n := e.seg.params.BlockCount
	coeffs := make([]byte, n)
	for {
		nonZero := false
		for i := range coeffs {
			if e.density >= 1 || e.rng.Float64() < e.density {
				coeffs[i] = byte(1 + e.rng.Intn(255))
				nonZero = true
			} else {
				coeffs[i] = 0
			}
		}
		if nonZero {
			return coeffs
		}
	}
}

// NextBlock draws random coefficients and returns the corresponding coded
// block.
func (e *Encoder) NextBlock() *CodedBlock {
	b, err := e.BlockFor(e.NextCoeffs())
	if err != nil {
		// NextCoeffs always produces a vector of the right length.
		panic(fmt.Sprintf("rlnc: internal encoder error: %v", err))
	}
	return b
}

// BlockFor returns the coded block for an explicit coefficient vector —
// Eq. 1: x = Σ c_i · b_i.
func (e *Encoder) BlockFor(coeffs []byte) (*CodedBlock, error) {
	p := e.seg.params
	if len(coeffs) != p.BlockCount {
		return nil, fmt.Errorf("%w: %d coefficients, want %d", ErrCoeffsMismatch, len(coeffs), p.BlockCount)
	}
	payload := make([]byte, p.BlockSize)
	EncodeInto(payload, e.seg, coeffs)
	return &CodedBlock{
		SegmentID: e.seg.id,
		Coeffs:    append([]byte(nil), coeffs...),
		Payload:   payload,
	}, nil
}

// EncodeInto computes Σ c_i·b_i over the segment's source blocks into dst
// (len ≥ BlockSize). It is the primitive shared by the encoder, the parallel
// workers and the simulators' reference checks. Internally it is the
// batch-size-1 case of the tiled batch kernel, so the zero-coefficient skip
// and fused source grouping live in one place (see encodebatch.go).
func EncodeInto(dst []byte, seg *Segment, coeffs []byte) {
	k := seg.params.BlockSize
	gf256.DotProduct(dst[:k], coeffs, seg.Blocks())
}

// Recoder regenerates fresh coded blocks from previously received ones
// without decoding — the capability that distinguishes network coding from
// end-to-end erasure codes ("can be recoded without affecting the guarantee
// to decode", Sec. 2). The recoded block's coefficients are re-expressed in
// terms of the original source blocks so downstream decoders are oblivious
// to the number of recoding hops.
type Recoder struct {
	params   Params
	segID    uint32
	received []*CodedBlock

	// probe tracks the rank of the received coefficient vectors so
	// linearly dependent input is dropped at the door: storing it would
	// waste memory and recombination work without enlarging the spanned
	// subspace. At most BlockCount blocks are ever held, so a relay's
	// memory is bounded no matter how long the upstream stream runs.
	probe [][]byte
	rank  int

	// rng, when set via WithSeed, drives Emit so the caller does not have
	// to thread a random source through every recombination.
	rng *rand.Rand

	// xorRecode (WithXorRecode) constrains emissions to GF(2)
	// recombinations through the XOR kernels: binary coefficients, no
	// table multiplies.
	xorRecode bool
}

// NewRecoder returns a recoder for the given configuration. WithSeed gives
// it a private deterministic source so Emit can draw recombination
// coefficients without a caller-supplied rng; WithXorRecode constrains
// emissions to XOR-only recombinations.
func NewRecoder(p Params, opts ...Option) (*Recoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	return &Recoder{params: p, probe: make([][]byte, p.BlockCount), rng: cfg.rng, xorRecode: cfg.xorRecode}, nil
}

// Add registers a received coded block as recoding input. Blocks that are
// linearly dependent with input already held are discarded (they cannot
// change any recombination); Rank reports the span. The block is cloned, so
// the caller may keep mutating or reusing b — a relay can feed Add straight
// from a receive loop that recycles its record storage.
//
// Binary blocks — a systematic sweep or GF(2) XOR repair stream, including
// records parsed from the compact XNC2 encoding — are ordinary input: their
// {0, 1} coefficients are valid GF(2^8) elements, so recombinations over
// them decode identically downstream. Emissions from a default recoder are
// dense regardless of input; under WithXorRecode binary input yields binary
// output.
func (r *Recoder) Add(b *CodedBlock) error {
	if err := b.Validate(r.params); err != nil {
		return err
	}
	if len(r.received) > 0 && b.SegmentID != r.segID {
		return wrongSegmentError(r.segID, b.SegmentID)
	}
	if !r.absorb(b.Coeffs) {
		return nil
	}
	r.segID = b.SegmentID
	r.received = append(r.received, b.Clone())
	return nil
}

// absorb reduces coeffs against the probe basis; it reports whether the
// vector was innovative (and if so, extends the basis).
func (r *Recoder) absorb(coeffs []byte) bool {
	row := append([]byte(nil), coeffs...)
	pivot := -1
	for c := range row {
		f := row[c]
		if f == 0 {
			continue
		}
		if pr := r.probe[c]; pr != nil {
			gf256.MulAddSlice(row, pr, f)
			continue
		}
		if pivot < 0 {
			pivot = c
		}
	}
	if pivot < 0 {
		return false
	}
	if pv := row[pivot]; pv != 1 {
		gf256.ScaleSlice(row, gf256.Inv(pv))
	}
	r.probe[pivot] = row
	r.rank++
	return true
}

// Count returns the number of innovative blocks held for recombination.
func (r *Recoder) Count() int { return len(r.received) }

// Rank returns the dimension of the subspace the recoder can emit from.
func (r *Recoder) Rank() int { return r.rank }

// Emit is NextBlock against the recoder's own random source (set with
// WithSeed). It fails with ErrNoBlocks when nothing has been received (a
// rank-0 recoder has no subspace to emit from — callers poll Rank and hold
// off until input arrives) and with ErrNoSeed when the recoder was built
// without one. Both failures leave the recoder unchanged and usable.
func (r *Recoder) Emit() (*CodedBlock, error) {
	if r.rng == nil {
		return nil, fmt.Errorf("%w: build the recoder with WithSeed or call NextBlock", ErrNoSeed)
	}
	return r.NextBlock(r.rng)
}

// NextBlock emits a random linear recombination of everything received.
// It fails with ErrNoBlocks when no input blocks are available. With a
// single held input the emission degrades to a scaled passthrough of that
// block (or, under WithXorRecode, the block verbatim) — still a valid coded
// block for the original source, so a relay can start serving after its
// very first upstream record.
func (r *Recoder) NextBlock(rng *rand.Rand) (*CodedBlock, error) {
	if len(r.received) == 0 {
		return nil, fmt.Errorf("%w: recoder received nothing", ErrNoBlocks)
	}
	out := &CodedBlock{
		SegmentID: r.segID,
		Coeffs:    make([]byte, r.params.BlockCount),
		Payload:   make([]byte, r.params.BlockSize),
	}
	if r.xorRecode {
		// GF(2) discipline: each input is either folded in whole (XOR) or
		// skipped. The selector is redrawn until non-zero, so the emission
		// is never the zero vector; the ops are the wide-word XOR kernels —
		// no multiply tables touched.
		for {
			any := false
			cs := make([]bool, len(r.received))
			for i := range cs {
				if rng.Intn(2) == 1 {
					cs[i] = true
					any = true
				}
			}
			if !any {
				continue
			}
			for i, in := range r.received {
				if !cs[i] {
					continue
				}
				gf256.XorSlice(out.Coeffs, in.Coeffs)
				gf256.XorSlice(out.Payload, in.Payload)
			}
			return out, nil
		}
	}
	// Draw the recombination coefficients first, then apply them through the
	// fused dot-product kernel: both the coefficient and payload rows are
	// consumed four sources per destination pass.
	cs := make([]byte, len(r.received))
	crows := make([][]byte, len(r.received))
	prows := make([][]byte, len(r.received))
	for i, in := range r.received {
		cs[i] = byte(1 + rng.Intn(255))
		crows[i] = in.Coeffs
		prows[i] = in.Payload
	}
	gf256.DotProduct(out.Coeffs, cs, crows)
	gf256.DotProduct(out.Payload, cs, prows)
	return out, nil
}
