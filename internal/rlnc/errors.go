package rlnc

import "errors"

// Sentinel errors for every invalid-input path in the codec. Constructors
// and entry points wrap these with fmt.Errorf("%w: detail"), so callers
// branch with errors.Is instead of matching message strings; the extremenc
// facade re-exports them. ErrInvalidParams (params.go), ErrNotReady and
// ErrWrongSegment (decoder.go) and ErrRankDeficient (batch.go) predate this
// file and live next to their types.
var (
	// ErrWorkerCount reports a non-positive worker count.
	ErrWorkerCount = errors.New("rlnc: worker count must be positive")
	// ErrEncodeMode reports an unknown parallel-encode partitioning mode.
	ErrEncodeMode = errors.New("rlnc: unknown encode mode")
	// ErrBlockCountInvalid reports a non-positive coded-block request.
	ErrBlockCountInvalid = errors.New("rlnc: block count must be positive")
	// ErrCoeffsMismatch reports a coefficient vector whose length does not
	// match the configured BlockCount.
	ErrCoeffsMismatch = errors.New("rlnc: coefficient count mismatch")
	// ErrBlockShape reports a coded block whose coefficient or payload
	// length does not match the coding parameters.
	ErrBlockShape = errors.New("rlnc: coded block shape mismatch")
	// ErrBatchShape reports a batch-encode call whose destination,
	// coefficient and segment shapes disagree.
	ErrBatchShape = errors.New("rlnc: batch shape mismatch")
	// ErrNoBlocks reports a recombination request with no input blocks.
	ErrNoBlocks = errors.New("rlnc: no input blocks")
	// ErrNoSeed reports an Emit call on a recoder built without WithSeed.
	ErrNoSeed = errors.New("rlnc: recoder has no seeded random source")
	// ErrDataTooLarge reports payload bytes that exceed the segment size.
	ErrDataTooLarge = errors.New("rlnc: data exceeds segment size")
	// ErrParamsMismatch reports segments whose coding parameters disagree
	// with the reassembly configuration.
	ErrParamsMismatch = errors.New("rlnc: segment params mismatch")
	// ErrSeededDense reports a seeded-block request on a sparse encoder
	// (seeded coefficient streams are defined only for density 1).
	ErrSeededDense = errors.New("rlnc: seeded blocks require dense coefficients")
)
