package rlnc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeededBlockRoundTrip(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 128}
	seg := randomSegment(t, 5, p, 100)
	rng := rand.New(rand.NewSource(101))
	enc := NewEncoder(seg, rng)

	sb, err := enc.NextSeededBlock()
	if err != nil {
		t.Fatal(err)
	}
	// The expanded block must be the true combination for its seed.
	plain := sb.Expand()
	want, err := enc.BlockFor(plain.Coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Payload, want.Payload) {
		t.Fatal("seeded payload does not match its coefficient vector")
	}

	// Wire round trip.
	data, err := sb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != sb.WireSize() {
		t.Fatalf("wire size %d != %d", len(data), sb.WireSize())
	}
	var got SeededBlock
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Seed != sb.Seed || got.SegmentID != sb.SegmentID || !bytes.Equal(got.Payload, sb.Payload) {
		t.Fatal("seeded wire round trip altered the block")
	}

	// Header is 8 bytes instead of n.
	seeded, plainOverhead := sb.HeaderOverhead()
	if seeded != 8 || plainOverhead != p.BlockCount {
		t.Fatalf("overhead = (%d, %d)", seeded, plainOverhead)
	}
}

func TestSeededBlocksDecode(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 64}
	seg := randomSegment(t, 1, p, 102)
	rng := rand.New(rand.NewSource(103))
	enc := NewEncoder(seg, rng)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		sb, err := enc.NextSeededBlock()
		if err != nil {
			t.Fatal(err)
		}
		// Receiver side: wire → regenerate coefficients → decode.
		data, err := sb.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var rx SeededBlock
		if err := rx.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(rx.Expand()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("seeded decode differs")
	}
}

func TestSeededBlockCorruption(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	seg := randomSegment(t, 1, p, 104)
	enc := NewEncoder(seg, rand.New(rand.NewSource(105)))
	sb, err := enc.NextSeededBlock()
	if err != nil {
		t.Fatal(err)
	}
	good, err := sb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'Z'
	if err := new(SeededBlock).UnmarshalBinary(bad); !errors.Is(err, ErrNotSeeded) {
		t.Fatalf("bad magic err = %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[seededHeaderLen] ^= 1
	if err := new(SeededBlock).UnmarshalBinary(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("flipped byte err = %v", err)
	}
	if err := new(SeededBlock).UnmarshalBinary(good[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err = %v", err)
	}
	// A plain coded block's magic must be rejected too.
	plainWire, err := sb.Expand().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(SeededBlock).UnmarshalBinary(plainWire); !errors.Is(err, ErrNotSeeded) {
		t.Fatalf("plain magic err = %v", err)
	}
}

func TestSeededRequiresDense(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	seg := randomSegment(t, 1, p, 106)
	enc := NewEncoder(seg, rand.New(rand.NewSource(107)), WithDensity(0.5))
	if _, err := enc.NextSeededBlock(); err == nil {
		t.Fatal("sparse encoder produced a seeded block")
	}
}

func TestCoeffsFromSeedDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a := CoeffsFromSeed(seed, 32)
		b := CoeffsFromSeed(seed, 32)
		if !bytes.Equal(a, b) {
			return false
		}
		for _, c := range a {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSystematicEncoder(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 64}
	seg := randomSegment(t, 2, p, 108)
	rng := rand.New(rand.NewSource(109))
	se := NewSystematicEncoder(seg, rng)

	if se.SystematicRemaining() != p.BlockCount {
		t.Fatalf("remaining = %d", se.SystematicRemaining())
	}
	// Phase 1: the source blocks verbatim, in order.
	for i := 0; i < p.BlockCount; i++ {
		b, err := se.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Payload, seg.Block(i)) {
			t.Fatalf("systematic block %d is not verbatim", i)
		}
		for c, v := range b.Coeffs {
			want := byte(0)
			if c == i {
				want = 1
			}
			if v != want {
				t.Fatalf("systematic block %d has non-unit coefficients", i)
			}
		}
	}
	if se.SystematicRemaining() != 0 {
		t.Fatal("systematic phase not exhausted")
	}
	// Phase 2: coded blocks.
	b, err := se.NextBlock()
	if err != nil {
		t.Fatal(err)
	}
	unit := 0
	for _, v := range b.Coeffs {
		if v != 0 {
			unit++
		}
	}
	if unit < 2 {
		t.Fatal("coded-phase block looks systematic")
	}
	se.Reset()
	if se.SystematicRemaining() != p.BlockCount {
		t.Fatal("Reset did not restart systematic phase")
	}
}

// TestSystematicWithLossDecodes: drop some verbatim blocks; the coded tail
// repairs them.
func TestSystematicWithLossDecodes(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 64}
	seg := randomSegment(t, 3, p, 110)
	rng := rand.New(rand.NewSource(111))
	se := NewSystematicEncoder(seg, rng)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	lossRng := rand.New(rand.NewSource(112))
	for !dec.Ready() {
		b, err := se.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if lossRng.Float64() < 0.25 {
			continue
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("systematic-with-loss decode differs")
	}
}

// TestRecoderDropsDependentInput: the basis-pruning recoder keeps only
// innovative blocks.
func TestRecoderDropsDependentInput(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	seg := randomSegment(t, 1, p, 113)
	rng := rand.New(rand.NewSource(114))
	enc := NewEncoder(seg, rng)
	r, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	b := enc.NextBlock()
	for i := 0; i < 5; i++ {
		if err := r.Add(b.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 1 || r.Rank() != 1 {
		t.Fatalf("count=%d rank=%d after 5 duplicates", r.Count(), r.Rank())
	}
	for i := 0; i < p.BlockCount+4; i++ {
		if err := r.Add(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	if r.Rank() != p.BlockCount || r.Count() != p.BlockCount {
		t.Fatalf("count=%d rank=%d, want %d (full rank, pruned)", r.Count(), r.Rank(), p.BlockCount)
	}
}

// TestGaussianDecoderMatchesGaussJordan: same blocks, same recovery,
// same dependence detection.
func TestGaussianDecoderMatchesGaussJordan(t *testing.T) {
	p := Params{BlockCount: 24, BlockSize: 96}
	seg := randomSegment(t, 6, p, 120)
	rng := rand.New(rand.NewSource(121))
	enc := NewEncoder(seg, rng)

	gj, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := NewGaussianDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var dup *CodedBlock
	for !gj.Ready() {
		b := enc.NextBlock()
		if dup == nil {
			dup = b
		}
		i1, err := gj.AddBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		i2, err := ge.AddBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if i1 != i2 {
			t.Fatalf("innovativeness disagrees: GJ %v, GE %v", i1, i2)
		}
	}
	// Both must flag the duplicate as dependent.
	if innov, _ := ge.AddBlock(dup.Clone()); innov {
		t.Fatal("Gaussian decoder accepted a duplicate as innovative")
	}
	if ge.Dependent() != 1 || ge.Received() != p.BlockCount+1 {
		t.Fatalf("GE stats: dep=%d recv=%d", ge.Dependent(), ge.Received())
	}

	want, err := gj.Segment()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ge.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !got.Equal(seg) {
		t.Fatal("Gaussian decode differs from Gauss-Jordan or source")
	}
}

func TestGaussianDecoderValidation(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	ge, err := NewGaussianDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ge.Segment(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("early Segment err = %v", err)
	}
	segA := randomSegment(t, 1, p, 122)
	segB := randomSegment(t, 2, p, 123)
	rng := rand.New(rand.NewSource(124))
	if _, err := ge.AddBlock(NewEncoder(segA, rng).NextBlock()); err != nil {
		t.Fatal(err)
	}
	if _, err := ge.AddBlock(NewEncoder(segB, rng).NextBlock()); !errors.Is(err, ErrWrongSegment) {
		t.Fatalf("wrong segment err = %v", err)
	}
	if _, err := NewGaussianDecoder(Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestGaussianOutOfOrderPivots: sparse vectors create out-of-order pivots;
// the deferred back-substitution must still produce the identity.
func TestGaussianOutOfOrderPivots(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 32}
	seg := randomSegment(t, 0, p, 125)
	rng := rand.New(rand.NewSource(126))
	enc := NewEncoder(seg, rng, WithDensity(0.3))
	ge, err := NewGaussianDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !ge.Ready() {
		if _, err := ge.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
		if ge.Received() > 50*p.BlockCount {
			t.Fatal("sparse stream failed to reach full rank")
		}
	}
	got, err := ge.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("sparse Gaussian decode differs")
	}
}

// BenchmarkDecoderStyles is the Gauss-Jordan vs Gaussian ablation from
// DESIGN.md §6: per-arrival progressive reduction versus deferred
// back-substitution.
func BenchmarkDecoderStyles(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(b, 0, p, 127)
	enc := NewEncoder(seg, rand.New(rand.NewSource(128)))
	blocks := make([]*CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	b.Run("gauss-jordan", func(b *testing.B) {
		b.SetBytes(int64(p.SegmentSize()))
		for i := 0; i < b.N; i++ {
			dec, err := NewDecoder(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				if _, err := dec.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := dec.Segment(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gaussian", func(b *testing.B) {
		b.SetBytes(int64(p.SegmentSize()))
		for i := 0; i < b.N; i++ {
			dec, err := NewGaussianDecoder(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				if _, err := dec.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := dec.Segment(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWireFormatGolden pins the exact wire bytes of both block formats so
// the formats cannot change silently — they are compatibility contracts.
func TestWireFormatGolden(t *testing.T) {
	p := Params{BlockCount: 2, BlockSize: 3}
	seg, err := SegmentFromData(0x01020304, p, []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := NewEncoder(seg, rand.New(rand.NewSource(42))).BlockFor([]byte{0x02, 0x03})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := blk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const wantPlain = "584e433101020304000000020000000302033344995c32efae"
	if got := fmt.Sprintf("%x", wire); got != wantPlain {
		t.Errorf("plain wire bytes changed:\n got %s\nwant %s", got, wantPlain)
	}

	sb := &SeededBlock{SegmentID: 0x01020304, BlockCount: 2, Seed: 7, Payload: []byte{1, 2, 3}}
	sw, err := sb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const wantSeeded = "584e533101020304000000020000000300000000000000070102031b892138"
	if got := fmt.Sprintf("%x", sw); got != wantSeeded {
		t.Errorf("seeded wire bytes changed:\n got %s\nwant %s", got, wantSeeded)
	}
}
