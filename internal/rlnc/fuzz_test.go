package rlnc

import (
	"bytes"
	"math/rand"
	"testing"
)

// Native fuzz targets for the wire formats. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzCodedBlockUnmarshal ./internal/rlnc` explores
// further.

func seedWire(f *testing.F, seeded bool) {
	f.Helper()
	p := Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	if seeded {
		sb, err := enc.NextSeededBlock()
		if err != nil {
			f.Fatal(err)
		}
		wire, err := sb.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	} else {
		wire, err := enc.NextBlock().MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte("XNC1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
}

func FuzzCodedBlockUnmarshal(f *testing.F) {
	seedWire(f, false)
	f.Fuzz(func(t *testing.T, data []byte) {
		var blk CodedBlock
		if err := blk.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted input must re-marshal to identical bytes.
		out, err := blk.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted block fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("unmarshal/marshal not idempotent")
		}
	})
}

// FuzzEncodeBatchVsSingle drives the tiled batch kernel against the
// single-block reference over fuzzer-chosen shapes: any divergence between
// EncodeBatchInto and the per-row Σ cᵢ·bᵢ loop is a kernel bug.
func FuzzEncodeBatchVsSingle(f *testing.F) {
	f.Add(int64(1), 4, 64, 3)
	f.Add(int64(2), 1, 1, 1)
	f.Add(int64(3), 7, 257, 5)
	f.Add(int64(4), 16, 4099, 17)
	f.Fuzz(func(t *testing.T, seed int64, n, k, batch int) {
		n = 1 + abs(n)%32
		k = 1 + abs(k)%600
		batch = 1 + abs(batch)%(encodeBatchGroup+3)
		p := Params{BlockCount: n, BlockSize: k}
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(1, p, data)
		if err != nil {
			t.Fatal(err)
		}
		coeffs := make([][]byte, batch)
		dsts := make([][]byte, batch)
		for b := range coeffs {
			coeffs[b] = make([]byte, n)
			rng.Read(coeffs[b])
			if b%2 == 0 {
				coeffs[b][rng.Intn(n)] = 0
			}
			dsts[b] = make([]byte, k)
		}
		if err := EncodeBatchInto(dsts, seg, coeffs); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, k)
		for b := range coeffs {
			encodeSingleRef(want, seg, coeffs[b])
			if !bytes.Equal(dsts[b], want) {
				t.Fatalf("n=%d k=%d batch=%d: row %d diverges from single-block encode", n, k, batch, b)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}

// FuzzXorBlockUnmarshal explores the GF(2) wire decoder: accepted input must
// expand to a binary block and re-marshal byte-identically — any mask byte
// with trailing bits, bad length, or checksum mismatch must be rejected, never
// mis-parsed.
func FuzzXorBlockUnmarshal(f *testing.F) {
	p := Params{BlockCount: 12, BlockSize: 48} // ragged mask: 4 trailing bits
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(3, p, data)
	if err != nil {
		f.Fatal(err)
	}
	se := NewSystematicEncoder(seg, rng)
	for i := 0; i < 3; i++ {
		wire, err := se.Block().MarshalBinaryXor()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte("XNC2"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		var blk CodedBlock
		if err := blk.UnmarshalBinaryXor(data); err != nil {
			return
		}
		if !blk.IsBinary() {
			t.Fatal("accepted XNC2 record expanded to non-binary coefficients")
		}
		out, err := blk.MarshalBinaryXor()
		if err != nil {
			t.Fatalf("accepted xor block fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("xor unmarshal/marshal not idempotent")
		}
	})
}

// FuzzRecordDispatch drives the magic-dispatching record parser with both
// encodings' seeds: whatever it accepts must re-marshal, under the matching
// encoding, to the input bytes.
func FuzzRecordDispatch(f *testing.F) {
	seedWire(f, false)
	p := Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		f.Fatal(err)
	}
	se := NewSystematicEncoder(seg, rng)
	wire, err := se.Block().MarshalBinaryXor()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte("XNC2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var blk CodedBlock
		if err := blk.UnmarshalRecord(data); err != nil {
			return
		}
		var out []byte
		var merr error
		if len(data) >= 4 && string(data[:4]) == xorWireMagic {
			out, merr = blk.MarshalBinaryXor()
		} else {
			out, merr = blk.MarshalBinary()
		}
		if merr != nil {
			t.Fatalf("accepted record fails to marshal: %v", merr)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("record dispatch unmarshal/marshal not idempotent")
		}
	})
}

func FuzzSeededBlockUnmarshal(f *testing.F) {
	seedWire(f, true)
	f.Fuzz(func(t *testing.T, data []byte) {
		var sb SeededBlock
		if err := sb.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := sb.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted seeded block fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("seeded unmarshal/marshal not idempotent")
		}
		// Expansion must always produce a shape-consistent block.
		blk := sb.Expand()
		if len(blk.Coeffs) != sb.BlockCount || len(blk.Payload) != len(sb.Payload) {
			t.Fatal("expanded block has inconsistent shape")
		}
	})
}
