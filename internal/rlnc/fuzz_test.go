package rlnc

import (
	"bytes"
	"math/rand"
	"testing"
)

// Native fuzz targets for the wire formats. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzCodedBlockUnmarshal ./internal/rlnc` explores
// further.

func seedWire(f *testing.F, seeded bool) {
	f.Helper()
	p := Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	if seeded {
		sb, err := enc.NextSeededBlock()
		if err != nil {
			f.Fatal(err)
		}
		wire, err := sb.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	} else {
		wire, err := enc.NextBlock().MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte("XNC1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
}

func FuzzCodedBlockUnmarshal(f *testing.F) {
	seedWire(f, false)
	f.Fuzz(func(t *testing.T, data []byte) {
		var blk CodedBlock
		if err := blk.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted input must re-marshal to identical bytes.
		out, err := blk.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted block fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("unmarshal/marshal not idempotent")
		}
	})
}

func FuzzSeededBlockUnmarshal(f *testing.F) {
	seedWire(f, true)
	f.Fuzz(func(t *testing.T, data []byte) {
		var sb SeededBlock
		if err := sb.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := sb.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted seeded block fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("seeded unmarshal/marshal not idempotent")
		}
		// Expansion must always produce a shape-consistent block.
		blk := sb.Expand()
		if len(blk.Coeffs) != sb.BlockCount || len(blk.Payload) != len(sb.Payload) {
			t.Fatal("expanded block has inconsistent shape")
		}
	})
}
