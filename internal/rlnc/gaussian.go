package rlnc

import (
	"fmt"

	"extremenc/internal/gf256"
)

// GaussianDecoder is the "more traditional Gaussian elimination" decoder
// the paper contrasts with its Gauss–Jordan choice (Sec. 3): arrivals are
// only forward-eliminated into row-echelon form, and the back-substitution
// that reduces the matrix to the identity is deferred to a single pass at
// the end. Per arrival it does roughly half the row operations of the
// progressive Gauss–Jordan Decoder, but the segment is not available until
// the final pass completes — the trade-off the paper resolves in favor of
// Gauss–Jordan for streaming (blocks become deliverable as the matrix
// reduces) while this shape can win for offline bulk decoding. Linear
// dependence is still detected for free (a row that forward-eliminates to
// zero).
type GaussianDecoder struct {
	params  Params
	segID   uint32
	haveSeg bool

	// rowForPivot[c] holds the echelon row with pivot column c: zeros left
	// of c, 1 at c, arbitrary to the right.
	rowForPivot [][]byte
	rank        int

	received  int
	dependent int
}

// NewGaussianDecoder returns an empty Gaussian-elimination decoder.
func NewGaussianDecoder(p Params) (*GaussianDecoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &GaussianDecoder{params: p, rowForPivot: make([][]byte, p.BlockCount)}, nil
}

// Params returns the coding configuration.
func (d *GaussianDecoder) Params() Params { return d.params }

// Rank returns the number of independent blocks absorbed.
func (d *GaussianDecoder) Rank() int { return d.rank }

// Ready reports whether back-substitution can recover the segment.
func (d *GaussianDecoder) Ready() bool { return d.rank == d.params.BlockCount }

// Received returns how many blocks were offered.
func (d *GaussianDecoder) Received() int { return d.received }

// Dependent returns how many offered blocks were linearly dependent.
func (d *GaussianDecoder) Dependent() int { return d.dependent }

// AddBlock forward-eliminates one coded block into the echelon form. It
// returns true when the block increased rank.
func (d *GaussianDecoder) AddBlock(b *CodedBlock) (innovative bool, err error) {
	if err := b.Validate(d.params); err != nil {
		return false, err
	}
	if d.haveSeg && b.SegmentID != d.segID {
		return false, fmt.Errorf("%w: have %d, got %d", ErrWrongSegment, d.segID, b.SegmentID)
	}
	d.segID, d.haveSeg = b.SegmentID, true
	d.received++

	n, k := d.params.BlockCount, d.params.BlockSize
	row := make([]byte, n+k)
	copy(row, b.Coeffs)
	copy(row[n:], b.Payload)

	// Forward elimination only: cancel pivot columns left to right and stop
	// at the first pivot-free non-zero column. Unlike Gauss–Jordan, no
	// back-substitution happens here.
	pivot := -1
	for c := 0; c < n; c++ {
		f := row[c]
		if f == 0 {
			continue
		}
		pr := d.rowForPivot[c]
		if pr == nil {
			pivot = c
			break
		}
		gf256.MulAddSlice(row, pr, f)
	}
	if pivot < 0 {
		d.dependent++
		return false, nil
	}
	if pv := row[pivot]; pv != 1 {
		gf256.ScaleSlice(row, gf256.Inv(pv))
	}
	d.rowForPivot[pivot] = row
	d.rank++
	return true, nil
}

// Segment runs the deferred back-substitution and returns the recovered
// segment. It fails with ErrNotReady below full rank.
func (d *GaussianDecoder) Segment() (*Segment, error) {
	if !d.Ready() {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrNotReady, d.rank, d.params.BlockCount)
	}
	n := d.params.BlockCount
	// Back-substitute from the last row upwards. Processing rows in
	// descending order means every pivot row below the current one is
	// already final, so row r can absorb all of its trailing eliminations in
	// one sweep — four pivot rows at a time through the fused kernel. Within
	// a descending group the factor positions sit left of every applied
	// pivot's support (pivot row c is zero left of column c), so reading the
	// four factors up front is exact.
	for r := n - 1; r >= 0; r-- {
		row := d.rowForPivot[r]
		c := n - 1
		for ; c-3 > r; c -= 4 {
			f1, f2, f3, f4 := row[c], row[c-1], row[c-2], row[c-3]
			if f1|f2|f3|f4 == 0 {
				continue
			}
			gf256.MulAddSlice4(row,
				d.rowForPivot[c], d.rowForPivot[c-1], d.rowForPivot[c-2], d.rowForPivot[c-3],
				f1, f2, f3, f4)
		}
		for ; c > r; c-- {
			if f := row[c]; f != 0 {
				gf256.MulAddSlice(row, d.rowForPivot[c], f)
			}
		}
	}
	seg, err := NewSegment(d.segID, d.params)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		copy(seg.Block(i), d.rowForPivot[i][n:])
	}
	return seg, nil
}
