package rlnc

import (
	"errors"
	"fmt"
	"sort"
)

// ErrMissingSegment reports a gap in a segment set during reassembly.
var ErrMissingSegment = errors.New("rlnc: missing segment")

// Object is a large payload split into consecutive generations (segments)
// for coding — the paper's content-distribution unit ("data to be
// disseminated is divided into n blocks" per segment; a file or stream is a
// sequence of such segments). The original length is retained so padding in
// the final segment can be stripped on reassembly.
type Object struct {
	Length   int
	Params   Params
	Segments []*Segment
}

// Split divides data into segments of p.SegmentSize() bytes, zero-padding
// the last. Segment IDs are assigned sequentially from 0.
func Split(data []byte, p Params) (*Object, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	segSize := p.SegmentSize()
	count := (len(data) + segSize - 1) / segSize
	if count == 0 {
		count = 1
	}
	obj := &Object{Length: len(data), Params: p, Segments: make([]*Segment, 0, count)}
	for i := 0; i < count; i++ {
		lo := i * segSize
		hi := min(lo+segSize, len(data))
		var chunk []byte
		if lo < len(data) {
			chunk = data[lo:hi]
		}
		seg, err := SegmentFromData(uint32(i), p, chunk)
		if err != nil {
			return nil, err
		}
		obj.Segments = append(obj.Segments, seg)
	}
	return obj, nil
}

// Reassemble concatenates the object's segments and strips the padding.
func (o *Object) Reassemble() ([]byte, error) {
	return ReassembleSegments(o.Segments, o.Length, o.Params)
}

// ReassembleSegments rebuilds a payload of the given length from decoded
// segments (in any order; IDs establish placement). It fails if a needed
// segment is absent or parameters disagree.
func ReassembleSegments(segs []*Segment, length int, p Params) ([]byte, error) {
	segSize := p.SegmentSize()
	need := (length + segSize - 1) / segSize
	if need == 0 {
		need = 1
	}
	byID := make(map[uint32]*Segment, len(segs))
	for _, s := range segs {
		if s.Params() != p {
			return nil, fmt.Errorf("%w: segment %d has params %v, want %v", ErrParamsMismatch, s.ID(), s.Params(), p)
		}
		byID[s.ID()] = s
	}
	out := make([]byte, 0, length)
	ids := make([]int, 0, need)
	for i := 0; i < need; i++ {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s, ok := byID[uint32(id)]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrMissingSegment, id)
		}
		remaining := length - len(out)
		out = append(out, s.Data()[:min(segSize, remaining)]...)
	}
	return out, nil
}
