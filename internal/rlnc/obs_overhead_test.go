package rlnc

import (
	"math/rand"
	"testing"

	"extremenc/internal/obs"
)

// benchEncodeSetup builds the paper's streaming shape (n=128, k=4096) with a
// 32-destination batch — the same configuration BenchmarkEncodeBatch runs.
func benchEncodeSetup(tb testing.TB) (seg *Segment, dsts, coeffs [][]byte, bytesPerOp int64) {
	tb.Helper()
	p := Params{BlockCount: 128, BlockSize: 4096}
	rng := rand.New(rand.NewSource(33))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		tb.Fatal(err)
	}
	const batch = 32
	coeffs = make([][]byte, batch)
	dsts = make([][]byte, batch)
	for i := range coeffs {
		coeffs[i] = make([]byte, p.BlockCount)
		for j := range coeffs[i] {
			coeffs[i][j] = byte(1 + rng.Intn(255))
		}
		dsts[i] = make([]byte, p.BlockSize)
	}
	return seg, dsts, coeffs, int64(batch) * int64(p.BlockSize)
}

// BenchmarkEncodeBatchSpans puts a number on the observability tax: the
// tiled batch encode with stage spans disabled (no obs sink — the default)
// versus enabled (a live registry recording every call into a histogram).
// The disabled variant is the deployment default and must track the plain
// BenchmarkEncodeBatch/batch figure; the enabled variant bounds the cost of
// turning metrics on.
func BenchmarkEncodeBatchSpans(b *testing.B) {
	seg, dsts, coeffs, bytesPerOp := benchEncodeSetup(b)
	run := func(b *testing.B) {
		b.SetBytes(bytesPerOp)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := EncodeBatchInto(dsts, seg, coeffs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("spans-off", func(b *testing.B) {
		obs.SetSink(nil)
		run(b)
	})
	b.Run("spans-on", func(b *testing.B) {
		reg := obs.NewRegistry()
		obs.SetSink(reg)
		defer obs.SetSink(nil)
		run(b)
	})
}

// TestEncodeBatchSpansDisabledAllocFree pins the zero-cost claim: with no
// obs sink installed, the instrumented encode hot path performs no heap
// allocation at all — the span is a value, the stage check one atomic load.
func TestEncodeBatchSpansDisabledAllocFree(t *testing.T) {
	obs.SetSink(nil)
	seg, dsts, coeffs, _ := benchEncodeSetup(t)
	allocs := testing.AllocsPerRun(10, func() {
		if err := EncodeBatchInto(dsts, seg, coeffs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("spans-disabled EncodeBatchInto allocates %.1f objects/op, want 0", allocs)
	}
}
