package rlnc

import "math/rand"

// Option configures the codec constructors that consume blocks — NewDecoder,
// NewBatchDecoder and NewRecoder — mirroring the variadic EncoderOption shape
// NewEncoder already has. Zero-option calls are unchanged, so existing code
// keeps compiling; options that do not apply to a constructor are ignored
// (e.g. a seed on the deterministic progressive decoder).
type Option func(*config)

// DecoderOption is Option under the name the decoder constructors document.
type DecoderOption = Option

// config collects the settings an Option can carry.
type config struct {
	scratch   *Scratch
	rng       *rand.Rand
	xorRecode bool
}

func applyOptions(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithScratch makes the constructed codec use the caller-provided workspace
// instead of drawing one from the process-wide scratch pool on first use.
// Useful when the caller manages scratch lifetimes itself (e.g. one warm
// Scratch per worker goroutine); the caller must not share s concurrently.
func WithScratch(s *Scratch) Option {
	return func(c *config) { c.scratch = s }
}

// WithSeed gives the constructed codec a private deterministic random source.
// A Recoder built with a seed can emit recombinations via Emit without the
// caller threading an rng through every call; decoders, which are fully
// deterministic, ignore it.
func WithSeed(seed int64) Option {
	return func(c *config) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithXorRecode constrains a Recoder to GF(2) recombinations: Emit and
// NextBlock draw each input's coefficient from {0, 1} (never all zero) and
// combine through the wide-word XOR kernels instead of the GF(2^8) multiply
// tables — the fixed cheap-operation relay mode of the programmable-switch
// literature. When every held input is binary (a systematic sweep or XOR
// repair stream) the emitted block is binary too, so a relay can re-frame it
// in the compact XNC2 encoding; one dense input makes the output dense but
// the combination stays valid, since {0, 1} are GF(2^8) elements. Decoders
// ignore this option.
func WithXorRecode() Option {
	return func(c *config) { c.xorRecode = true }
}
