package rlnc

import "math/rand"

// Option configures the codec constructors that consume blocks — NewDecoder,
// NewBatchDecoder and NewRecoder — mirroring the variadic EncoderOption shape
// NewEncoder already has. Zero-option calls are unchanged, so existing code
// keeps compiling; options that do not apply to a constructor are ignored
// (e.g. a seed on the deterministic progressive decoder).
type Option func(*config)

// DecoderOption is Option under the name the decoder constructors document.
type DecoderOption = Option

// config collects the settings an Option can carry.
type config struct {
	scratch *Scratch
	rng     *rand.Rand
}

func applyOptions(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithScratch makes the constructed codec use the caller-provided workspace
// instead of drawing one from the process-wide scratch pool on first use.
// Useful when the caller manages scratch lifetimes itself (e.g. one warm
// Scratch per worker goroutine); the caller must not share s concurrently.
func WithScratch(s *Scratch) Option {
	return func(c *config) { c.scratch = s }
}

// WithSeed gives the constructed codec a private deterministic random source.
// A Recoder built with a seed can emit recombinations via Emit without the
// caller threading an rng through every call; decoders, which are fully
// deterministic, ignore it.
func WithSeed(seed int64) Option {
	return func(c *config) { c.rng = rand.New(rand.NewSource(seed)) }
}
