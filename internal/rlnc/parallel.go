package rlnc

import (
	"fmt"
	"math/rand"
	"sync"

	"extremenc/internal/gf256"
)

// EncodeMode selects how a multi-worker encoder partitions work — the
// comparison of paper Sec. 5.3 / Fig. 10.
type EncodeMode int

const (
	// PartitionedBlock splits every coded block's payload across all
	// workers, so each single block materializes as fast as possible (the
	// original IWQoS'07 scheme: on-demand generation).
	PartitionedBlock EncodeMode = iota + 1
	// FullBlock assigns whole coded blocks to workers (the paper's new
	// streaming-server scheme: generate many, buffer, deliver on demand).
	FullBlock
)

func (m EncodeMode) String() string {
	switch m {
	case PartitionedBlock:
		return "partitioned-block"
	case FullBlock:
		return "full-block"
	default:
		return fmt.Sprintf("EncodeMode(%d)", int(m))
	}
}

// ParallelEncoder produces batches of coded blocks with a pool of workers.
// Output is deterministic for a given seed regardless of worker count or
// scheduling: the coefficient matrix is drawn up front and workers write
// disjoint regions.
type ParallelEncoder struct {
	workers int
	mode    EncodeMode
}

// NewParallelEncoder returns an encoder with the given worker count and
// partitioning mode.
func NewParallelEncoder(workers int, mode EncodeMode) (*ParallelEncoder, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("rlnc: worker count %d must be positive", workers)
	}
	if mode != PartitionedBlock && mode != FullBlock {
		return nil, fmt.Errorf("rlnc: unknown encode mode %d", int(mode))
	}
	return &ParallelEncoder{workers: workers, mode: mode}, nil
}

// Encode produces count coded blocks from seg using coefficients drawn from
// a rand source seeded with seed.
func (pe *ParallelEncoder) Encode(seg *Segment, count int, seed int64) ([]*CodedBlock, error) {
	if count <= 0 {
		return nil, fmt.Errorf("rlnc: block count %d must be positive", count)
	}
	p := seg.Params()
	rng := rand.New(rand.NewSource(seed))
	enc := NewEncoder(seg, rng)
	blocks := make([]*CodedBlock, count)
	for i := range blocks {
		blocks[i] = &CodedBlock{
			SegmentID: seg.ID(),
			Coeffs:    enc.NextCoeffs(),
			Payload:   make([]byte, p.BlockSize),
		}
	}

	switch pe.mode {
	case FullBlock:
		pe.encodeFullBlock(seg, blocks)
	case PartitionedBlock:
		pe.encodePartitioned(seg, blocks)
	}
	return blocks, nil
}

// encodeFullBlock hands whole coded blocks to workers round-robin.
func (pe *ParallelEncoder) encodeFullBlock(seg *Segment, blocks []*CodedBlock) {
	var wg sync.WaitGroup
	for w := 0; w < pe.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(blocks); i += pe.workers {
				EncodeInto(blocks[i].Payload, seg, blocks[i].Coeffs)
			}
		}(w)
	}
	wg.Wait()
}

// encodePartitioned generates blocks one at a time, splitting each payload
// into contiguous per-worker stripes.
func (pe *ParallelEncoder) encodePartitioned(seg *Segment, blocks []*CodedBlock) {
	k := seg.Params().BlockSize
	stripe := (k + pe.workers - 1) / pe.workers
	for _, b := range blocks {
		var wg sync.WaitGroup
		for w := 0; w < pe.workers; w++ {
			lo := w * stripe
			if lo >= k {
				break
			}
			hi := min(lo+stripe, k)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				encodeStripe(b.Payload[lo:hi], seg, b.Coeffs, lo)
			}(lo, hi)
		}
		wg.Wait()
	}
}

// encodeStripe computes the [off, off+len(dst)) byte range of Σ c_i·b_i.
func encodeStripe(dst []byte, seg *Segment, coeffs []byte, off int) {
	clear(dst)
	for i, c := range coeffs {
		if c != 0 {
			src := seg.Block(i)[off : off+len(dst)]
			gf256.MulAddSlice(dst, src, c)
		}
	}
}

// DecodeSegmentsParallel batch-decodes independent segments with the given
// worker count — the paper's parallel multi-segment decoding (Sec. 5.2):
// each worker owns whole segments, so no cross-worker synchronization is
// needed. blocksPerSegment[i] must span segment i.
func DecodeSegmentsParallel(p Params, blocksPerSegment [][]*CodedBlock, workers int) ([]*Segment, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("rlnc: worker count %d must be positive", workers)
	}
	segs := make([]*Segment, len(blocksPerSegment))
	errs := make([]error, len(blocksPerSegment))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(blocksPerSegment); i += workers {
				dec, err := NewBatchDecoder(p)
				if err != nil {
					errs[i] = err
					continue
				}
				for _, b := range blocksPerSegment[i] {
					if err := dec.Add(b); err != nil {
						errs[i] = err
						break
					}
				}
				if errs[i] != nil {
					continue
				}
				segs[i], errs[i] = dec.Decode()
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rlnc: segment %d: %w", i, err)
		}
	}
	return segs, nil
}
