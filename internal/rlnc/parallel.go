package rlnc

import (
	"context"
	"fmt"
	"math/rand"
)

// EncodeMode selects how a multi-worker encoder partitions work — the
// comparison of paper Sec. 5.3 / Fig. 10.
type EncodeMode int

const (
	// PartitionedBlock splits every coded block's payload across all
	// workers, so each worker owns a contiguous column stripe (the original
	// IWQoS'07 scheme: on-demand generation). The stripe work for the whole
	// batch runs under a single dispatch: worker w computes its columns of
	// every coded block in one tiled pass.
	PartitionedBlock EncodeMode = iota + 1
	// FullBlock assigns whole coded blocks to workers (the paper's new
	// streaming-server scheme: generate many, buffer, deliver on demand).
	FullBlock
)

func (m EncodeMode) String() string {
	switch m {
	case PartitionedBlock:
		return "partitioned-block"
	case FullBlock:
		return "full-block"
	default:
		return fmt.Sprintf("EncodeMode(%d)", int(m))
	}
}

// ParallelEncoder produces batches of coded blocks with the persistent
// worker pool. Output is deterministic for a given seed regardless of worker
// count or scheduling: the coefficient matrix is drawn up front and workers
// write disjoint regions.
type ParallelEncoder struct {
	workers int
	mode    EncodeMode
	pool    *Pool
}

// NewParallelEncoder returns an encoder with the given worker count and
// partitioning mode. Work executes on the process-wide SharedPool; workers
// only bounds how many concurrent stripes this encoder dispatches.
func NewParallelEncoder(workers int, mode EncodeMode) (*ParallelEncoder, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrWorkerCount, workers)
	}
	if mode != PartitionedBlock && mode != FullBlock {
		return nil, fmt.Errorf("%w: %d", ErrEncodeMode, int(mode))
	}
	return &ParallelEncoder{workers: workers, mode: mode, pool: SharedPool()}, nil
}

// Encode produces count coded blocks from seg using coefficients drawn from
// a rand source seeded with seed.
func (pe *ParallelEncoder) Encode(seg *Segment, count int, seed int64) ([]*CodedBlock, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBlockCountInvalid, count)
	}
	// Same stage as EncodeBatchInto: one batch-encode call, whichever entry
	// point produced it (the workers call encodeBatchRange directly, so the
	// span is never double-counted).
	defer stageEncodeBatch.Start().End()
	p := seg.Params()
	rng := rand.New(rand.NewSource(seed))
	enc := NewEncoder(seg, rng)
	blocks := make([]*CodedBlock, count)
	for i := range blocks {
		blocks[i] = &CodedBlock{
			SegmentID: seg.ID(),
			Coeffs:    enc.NextCoeffs(),
			Payload:   make([]byte, p.BlockSize),
		}
	}

	switch pe.mode {
	case FullBlock:
		pe.encodeFullBlock(seg, blocks)
	case PartitionedBlock:
		pe.encodePartitioned(seg, blocks)
	}
	return blocks, nil
}

// encodeFullBlock hands whole coded blocks to workers round-robin; each
// worker batch-encodes all of its blocks in one tiled pass using its scratch
// row views.
func (pe *ParallelEncoder) encodeFullBlock(seg *Segment, blocks []*CodedBlock) {
	srcs := seg.Blocks()
	k := seg.Params().BlockSize
	stride := pe.workers
	pe.pool.Dispatch(stride, func(w int, s *Scratch) {
		cnt := 0
		for i := w; i < len(blocks); i += stride {
			cnt++
		}
		if cnt == 0 {
			return
		}
		dsts, coeffs := s.rowViews(cnt)
		j := 0
		for i := w; i < len(blocks); i += stride {
			dsts[j] = blocks[i].Payload
			coeffs[j] = blocks[i].Coeffs
			j++
		}
		encodeBatchRange(dsts, srcs, coeffs, 0, k)
	})
}

// encodePartitioned gives every worker a contiguous column stripe of all
// coded blocks. Unlike the seed implementation — which launched a fresh
// goroutine set per coded block — the whole batch runs under one dispatch:
// worker w clears and accumulates columns [w·stripe, (w+1)·stripe) of every
// payload in a single tiled pass.
func (pe *ParallelEncoder) encodePartitioned(seg *Segment, blocks []*CodedBlock) {
	srcs := seg.Blocks()
	k := seg.Params().BlockSize
	stripe := (k + pe.workers - 1) / pe.workers
	dsts := make([][]byte, len(blocks))
	coeffs := make([][]byte, len(blocks))
	for i, b := range blocks {
		dsts[i] = b.Payload
		coeffs[i] = b.Coeffs
	}
	pe.pool.Dispatch(pe.workers, func(w int, _ *Scratch) {
		lo := w * stripe
		if lo >= k {
			return
		}
		hi := min(lo+stripe, k)
		encodeBatchRange(dsts, srcs, coeffs, lo, hi)
	})
}

// DecodeSegmentsParallel batch-decodes independent segments with the given
// worker count — the paper's parallel multi-segment decoding (Sec. 5.2):
// each worker owns whole segments, so no cross-worker synchronization is
// needed, and runs the explicit two-stage pipeline (twostage.go) against its
// own warm scratch. blocksPerSegment[i] must span segment i. Work executes
// on the process-wide SharedPool.
//
// Cancelling ctx stops the sweep at segment granularity: workers finish the
// segment in hand, remaining segments are skipped, and the call returns
// ctx.Err(). Pass context.Background() when cancellation is not needed.
func DecodeSegmentsParallel(ctx context.Context, p Params, blocksPerSegment [][]*CodedBlock, workers int) ([]*Segment, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrWorkerCount, workers)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	segs := make([]*Segment, len(blocksPerSegment))
	errs := make([]error, len(blocksPerSegment))
	SharedPool().Dispatch(workers, func(w int, s *Scratch) {
		for i := w; i < len(blocksPerSegment); i += workers {
			if ctx.Err() != nil {
				return
			}
			segs[i], errs[i] = decodeTwoStageWith(s, p, blocksPerSegment[i])
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rlnc: segment %d: %w", i, err)
		}
	}
	return segs, nil
}
