// Package rlnc implements random linear network coding over GF(2^8): the
// codec the paper accelerates. Data is divided into segments (generations)
// of n blocks of k bytes each; coded blocks carry a random coefficient
// vector and the corresponding linear combination of the source blocks
// (paper Sec. 3, Eq. 1). Decoding is progressive Gauss–Jordan elimination
// (Eq. 2), which detects linearly dependent arrivals for free; a batch
// invert-then-multiply decoder mirrors the two-stage multi-segment pipeline
// of Sec. 5.2. Recoding — the defining capability of network coding —
// produces fresh combinations from received coded blocks without decoding.
//
// This package is the real, host-native implementation; the GPU and CPU
// simulators in internal/gpu and internal/cpusim are validated against it.
package rlnc

import (
	"errors"
	"fmt"
)

// Limits for wire-format sanity checking. They comfortably cover the paper's
// evaluated range (n up to 1024, k up to 32 KiB).
const (
	MaxBlockCount = 1 << 16
	MaxBlockSize  = 1 << 26
)

// ErrInvalidParams reports an unusable coding configuration.
var ErrInvalidParams = errors.New("rlnc: invalid coding parameters")

// Params describes a network coding configuration (n, k): BlockCount source
// blocks per segment, each BlockSize bytes.
type Params struct {
	BlockCount int // n — blocks per segment
	BlockSize  int // k — bytes per block
}

// Validate checks that the configuration is usable.
func (p Params) Validate() error {
	if p.BlockCount <= 0 || p.BlockCount > MaxBlockCount {
		return fmt.Errorf("%w: block count %d out of (0,%d]", ErrInvalidParams, p.BlockCount, MaxBlockCount)
	}
	if p.BlockSize <= 0 || p.BlockSize > MaxBlockSize {
		return fmt.Errorf("%w: block size %d out of (0,%d]", ErrInvalidParams, p.BlockSize, MaxBlockSize)
	}
	return nil
}

// SegmentSize returns n·k, the number of payload bytes in one segment.
func (p Params) SegmentSize() int { return p.BlockCount * p.BlockSize }

func (p Params) String() string {
	return fmt.Sprintf("(n=%d, k=%d)", p.BlockCount, p.BlockSize)
}
