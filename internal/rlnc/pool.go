package rlnc

import (
	"runtime"
	"sync"
)

// Pool is a persistent worker pool for the host codec. The seed code spawned
// a fresh goroutine set (and WaitGroup) per coded block or per Encode call;
// the pool keeps its workers parked on a channel instead, so a dispatch
// costs one channel send per task rather than a goroutine spawn, and each
// worker carries reusable scratch storage across tasks.
//
// Determinism is preserved by construction: tasks are identified by index
// and write disjoint output regions, so results do not depend on which
// worker executes which task or in what order.
type Pool struct {
	workers int
	jobs    chan poolJob
	close   sync.Once
}

type poolJob struct {
	fn func(i int, s *Scratch)
	i  int
	wg *sync.WaitGroup
}

// Scratch is reusable codec workspace. Each pool worker goroutine owns
// exactly one Scratch for its lifetime, and decoders draw one from the
// process-wide scratch pool (see GetScratch), so holders may use it freely
// without synchronization; contents are undefined at task entry.
type Scratch struct {
	buf    []byte
	dsts   [][]byte
	coeffs [][]byte
	aug    [][]byte // matrix row views for the two-stage inverter
	cols   []int    // pivot-column gather list for the batched absorb
}

// Bytes returns an n-byte workspace, growing the backing array as needed.
// Contents are unspecified.
func (s *Scratch) Bytes(n int) []byte {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	return s.buf[:n]
}

// rowViews returns two reusable row-header slices of length n, used by the
// encode paths to assemble batch views without per-dispatch allocation.
func (s *Scratch) rowViews(n int) (dsts, coeffs [][]byte) {
	if cap(s.dsts) < n {
		s.dsts = make([][]byte, n)
		s.coeffs = make([][]byte, n)
	}
	return s.dsts[:n], s.coeffs[:n]
}

// augRows returns a third reusable row-header slice of length n, used by the
// two-stage decoder for its [C | I] working matrix alongside rowViews.
func (s *Scratch) augRows(n int) [][]byte {
	if cap(s.aug) < n {
		s.aug = make([][]byte, n)
	}
	return s.aug[:n]
}

// colBuf returns a reusable int slice of capacity ≥ n, length 0 — the
// pivot-column gather list of the batched absorb path.
func (s *Scratch) colBuf(n int) []int {
	if cap(s.cols) < n {
		s.cols = make([]int, 0, n)
	}
	return s.cols[:0]
}

// NewPool starts a pool with the given worker count; workers ≤ 0 selects
// GOMAXPROCS. The workers live until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, jobs: make(chan poolJob)}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	s := &Scratch{}
	for j := range p.jobs {
		j.fn(j.i, s)
		j.wg.Done()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Dispatch runs fn(i, scratch) for every i in [0, n) across the pool's
// workers and returns when all calls have completed. Tasks beyond the worker
// count queue and run as workers free up. fn must not call Dispatch on the
// same pool (workers executing fn cannot drain the nested tasks).
func (p *Pool) Dispatch(n int, fn func(i int, s *Scratch)) {
	if n == 1 {
		// Single task: run on the caller, no channel round-trip. A fresh
		// Scratch keeps the contract (exclusive ownership) without touching
		// worker state.
		fn(0, &Scratch{})
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{fn: fn, i: i, wg: &wg}
	}
	wg.Wait()
}

// Close terminates the workers. Dispatch must not be called after Close.
func (p *Pool) Close() {
	p.close.Do(func() { close(p.jobs) })
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide codec pool (GOMAXPROCS workers),
// started on first use and never closed. The parallel encoder and decoder
// dispatch through it by default, so every ParallelEncoder/Decode call in
// the process shares one warm worker set.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// scratchPool recycles Scratch values across decoders and the one-shot
// decode entry points, complementing the per-worker Scratch that pool
// workers own: a decoder absorbing batches between pool dispatches reuses a
// warm workspace instead of growing a fresh one.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch draws a reusable workspace from the process-wide scratch pool.
// Contents are undefined.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a workspace to the pool. The caller must not retain
// any slice obtained from it afterwards.
func PutScratch(s *Scratch) { scratchPool.Put(s) }
