package rlnc

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestPoolDispatchRunsEveryTask(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	for _, n := range []int{1, 2, 3, 7, 64} {
		seen := make([]int32, n)
		p.Dispatch(n, func(i int, _ *Scratch) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: task %d ran %d times, want 1", n, i, c)
			}
		}
	}
}

func TestPoolScratchReuse(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	// With one worker every task sees the same scratch; Bytes must grow and
	// then keep serving from the grown backing array.
	var caps []int
	p.Dispatch(2, func(i int, s *Scratch) {
		b := s.Bytes(64)
		caps = append(caps, cap(b))
	})
	p.Dispatch(2, func(i int, s *Scratch) {
		b := s.Bytes(1024)
		caps = append(caps, cap(b))
	})
	if len(caps) != 4 {
		t.Fatalf("ran %d tasks, want 4", len(caps))
	}
	if caps[0] < 64 || caps[2] < 1024 {
		t.Fatalf("scratch did not grow: caps %v", caps)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

// TestParallelEncoderDeterministicAcrossWorkerCounts pins the hard
// requirement: for a fixed seed, the coded output is byte-identical no
// matter how many workers or which mode is used.
func TestParallelEncoderDeterministicAcrossWorkerCounts(t *testing.T) {
	p := Params{BlockCount: 24, BlockSize: 130} // odd size: exercises stripe tails
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(9, p, data)
	if err != nil {
		t.Fatal(err)
	}

	const count, seed = 17, int64(77)
	var ref []*CodedBlock
	for _, mode := range []EncodeMode{FullBlock, PartitionedBlock} {
		for _, workers := range []int{1, 2, 3, 8, 32} {
			pe, err := NewParallelEncoder(workers, mode)
			if err != nil {
				t.Fatal(err)
			}
			blocks, err := pe.Encode(seg, count, seed)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = blocks
				continue
			}
			for i := range blocks {
				if !bytes.Equal(blocks[i].Coeffs, ref[i].Coeffs) {
					t.Fatalf("%v workers=%d: block %d coeffs diverge", mode, workers, i)
				}
				if !bytes.Equal(blocks[i].Payload, ref[i].Payload) {
					t.Fatalf("%v workers=%d: block %d payload diverges", mode, workers, i)
				}
			}
		}
	}
}

// TestParallelEncoderReuse exercises the persistent pool across repeated
// Encode calls from the same encoder (the streaming-server call pattern the
// pool exists for).
func TestParallelEncoderReuse(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 256}
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(3, p, data)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelEncoder(4, FullBlock)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		blocks, err := pe.Encode(seg, 12, int64(round))
		if err != nil {
			t.Fatal(err)
		}
		// Every round must decode back to the source segment.
		dec, err := NewBatchDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if err := dec.Add(b); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got.Data(), seg.Data()) {
			t.Fatalf("round %d: decoded data diverges", round)
		}
	}
}
