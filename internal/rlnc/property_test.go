package rlnc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"extremenc/internal/gf256"
)

// consistentWithSource checks the fundamental RLNC invariant: a block's
// payload is exactly the combination its coefficient vector claims,
// x = Σ cᵢ·bᵢ over the true source blocks — no matter how many encoding or
// recoding hops produced it.
func consistentWithSource(seg *Segment, b *CodedBlock) bool {
	k := seg.Params().BlockSize
	want := make([]byte, k)
	for i, c := range b.Coeffs {
		if c != 0 {
			gf256.MulAddSlice(want, seg.Block(i), c)
		}
	}
	return bytes.Equal(want, b.Payload)
}

// TestRecodingPreservesCombinationInvariant: blocks surviving arbitrary
// recoding chains still satisfy x = C·b against the original source.
func TestRecodingPreservesCombinationInvariant(t *testing.T) {
	f := func(seed int64, hops8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{BlockCount: 4 + rng.Intn(12), BlockSize: 16 + rng.Intn(64)}
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(9, p, data)
		if err != nil {
			return false
		}
		enc := NewEncoder(seg, rng)

		// Chain of 1–4 recoding hops, each fed from the previous.
		hops := 1 + int(hops8)%4
		prev := make([]*CodedBlock, p.BlockCount+1)
		for i := range prev {
			prev[i] = enc.NextBlock()
		}
		for h := 0; h < hops; h++ {
			rec, err := NewRecoder(p)
			if err != nil {
				return false
			}
			for _, b := range prev {
				if err := rec.Add(b); err != nil {
					return false
				}
			}
			next := make([]*CodedBlock, len(prev))
			for i := range next {
				if next[i], err = rec.NextBlock(rng); err != nil {
					return false
				}
			}
			prev = next
		}
		for _, b := range prev {
			if !consistentWithSource(seg, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDecodeArrivalOrderInvariance: any permutation of a spanning block set
// recovers the same segment.
func TestDecodeArrivalOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{BlockCount: 4 + rng.Intn(10), BlockSize: 8 + rng.Intn(64)}
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(2, p, data)
		if err != nil {
			return false
		}
		enc := NewEncoder(seg, rng)
		blocks := make([]*CodedBlock, p.BlockCount+2)
		for i := range blocks {
			blocks[i] = enc.NextBlock()
		}
		decodeAll := func(order []int) *Segment {
			dec, err := NewDecoder(p)
			if err != nil {
				return nil
			}
			for _, idx := range order {
				if _, err := dec.AddBlock(blocks[idx]); err != nil {
					return nil
				}
			}
			s, err := dec.Segment()
			if err != nil {
				return nil
			}
			return s
		}
		forward := make([]int, len(blocks))
		for i := range forward {
			forward[i] = i
		}
		shuffled := append([]int(nil), forward...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		a, b := decodeAll(forward), decodeAll(shuffled)
		return a != nil && b != nil && a.Equal(b) && a.Equal(seg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDecoderRankMonotone: rank never decreases and Ready ⇔ rank = n.
func TestDecoderRankMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{BlockCount: 3 + rng.Intn(8), BlockSize: 8 + rng.Intn(32)}
		data := make([]byte, p.SegmentSize())
		rng.Read(data)
		seg, err := SegmentFromData(1, p, data)
		if err != nil {
			return false
		}
		enc := NewEncoder(seg, rng, WithDensity(0.4))
		dec, err := NewDecoder(p)
		if err != nil {
			return false
		}
		prev := 0
		for i := 0; i < 4*p.BlockCount; i++ {
			if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
				return false
			}
			r := dec.Rank()
			if r < prev || r > p.BlockCount {
				return false
			}
			if dec.Ready() != (r == p.BlockCount) {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMixedBlockKindsDecode: systematic, dense coded, sparse coded, seeded
// and recoded blocks interoperate in a single decoder.
func TestMixedBlockKindsDecode(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 48}
	rng := rand.New(rand.NewSource(130))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(4, p, data)
	if err != nil {
		t.Fatal(err)
	}

	se := NewSystematicEncoder(seg, rng)
	dense := NewEncoder(seg, rng)
	sparse := NewEncoder(seg, rng, WithDensity(0.3))
	rec, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rec.Add(dense.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}

	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}

	// Prelude: a run of purely binary blocks (systematic + GF(2) repair) must
	// keep the decoder on its XOR-only fast path — the fast path and the
	// general machinery must agree block for block before dense kinds enter.
	if !dec.xorOnly {
		t.Fatal("fresh decoder not on the XOR fast path")
	}
	pre := NewSystematicEncoder(seg, rand.New(rand.NewSource(131)), WithXorRepair(4), WithDenseTail(0))
	for i := 0; i < p.BlockCount/2+4; i++ {
		b, err := pre.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsBinary() {
			t.Fatalf("prelude block %d is not GF(2)", i)
		}
		if !consistentWithSource(seg, b) {
			t.Fatalf("prelude block %d inconsistent", i)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if !dec.xorOnly {
			t.Fatalf("binary block %d knocked the decoder off the fast path", i)
		}
	}

	sources := []func() (*CodedBlock, error){
		se.NextBlock,
		func() (*CodedBlock, error) { return dense.NextBlock(), nil },
		func() (*CodedBlock, error) { return sparse.NextBlock(), nil },
		func() (*CodedBlock, error) {
			sb, err := dense.NextSeededBlock()
			if err != nil {
				return nil, err
			}
			return sb.Expand(), nil
		},
		func() (*CodedBlock, error) { return rec.NextBlock(rng) },
	}
	i := 0
	for !dec.Ready() {
		b, err := sources[i%len(sources)]()
		if err != nil {
			t.Fatal(err)
		}
		i++
		if !consistentWithSource(seg, b) {
			t.Fatalf("source %d emitted an inconsistent block", (i-1)%len(sources))
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if i > 40*p.BlockCount {
			t.Fatal("mixed stream failed to reach full rank")
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("mixed-kind decode differs")
	}
}

// TestWireFuzzNeverPanics: random mutations of valid wire bytes either
// error cleanly or round-trip to a valid block.
func TestWireFuzzNeverPanics(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	rng := rand.New(rand.NewSource(131))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	wire, err := enc.NextBlock().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		mutated := append([]byte(nil), wire...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		var blk CodedBlock
		if err := blk.UnmarshalBinary(mutated); err == nil {
			// Accepted: must be internally consistent.
			if blk.Validate(blk.Params()) != nil {
				t.Fatal("unmarshaled block fails its own validation")
			}
		}
	}
}

// TestGenerationSizesProperty: Split always covers the payload and pads
// only the tail segment.
func TestGenerationSizesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{BlockCount: 1 + rng.Intn(8), BlockSize: 1 + rng.Intn(64)}
		length := rng.Intn(5 * p.SegmentSize())
		data := make([]byte, length)
		rng.Read(data)
		obj, err := Split(data, p)
		if err != nil {
			return false
		}
		want := (length + p.SegmentSize() - 1) / p.SegmentSize()
		if want == 0 {
			want = 1
		}
		if len(obj.Segments) != want {
			return false
		}
		back, err := obj.Reassemble()
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
