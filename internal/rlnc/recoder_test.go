package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestRecodeThenDecodeDifferential is the recoder's differential gate:
// decoding a recoded stream must reconstruct the source byte-identically to
// decoding the encoder's blocks directly — the "oblivious to recoding hops"
// property that lets a relay mesh interpose freely.
func TestRecodeThenDecodeDifferential(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 96}
	seg := randomSegment(t, 3, p, 101)
	rng := rand.New(rand.NewSource(102))
	enc := NewEncoder(seg, rng)

	// Direct decode of the encoder's own blocks.
	direct, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecoder(p, WithSeed(103))
	if err != nil {
		t.Fatal(err)
	}
	for !direct.Ready() {
		b := enc.NextBlock()
		if _, err := direct.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if err := rec.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Segment()
	if err != nil {
		t.Fatal(err)
	}

	// Decode from recoded emissions only.
	viaRelay, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !viaRelay.Ready() {
		b, err := rec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(p); err != nil {
			t.Fatalf("emitted block invalid: %v", err)
		}
		if _, err := viaRelay.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if viaRelay.Received() > 20*p.BlockCount {
			t.Fatal("recoded stream failed to reach full rank")
		}
	}
	got, err := viaRelay.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !got.Equal(seg) {
		t.Fatal("recode-then-decode differs from direct decode")
	}
}

// TestRecoderRankPreservation: the recoder's rank must track the span of its
// input exactly — shuffled arrival order and linearly dependent duplicates
// must not inflate it, and its emissions must span exactly that subspace
// (a downstream decoder caps at the recoder's rank, never above).
func TestRecoderRankPreservation(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 48}
	seg := randomSegment(t, 7, p, 201)
	rng := rand.New(rand.NewSource(202))
	enc := NewEncoder(seg, rng)

	const partial = 7 // hold the recoder below full rank
	blocks := make([]*CodedBlock, 0, partial)
	for i := 0; i < partial; i++ {
		blocks = append(blocks, enc.NextBlock())
	}
	rec, err := NewRecoder(p, WithSeed(203))
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled arrival plus every block a second time (dependent).
	order := rng.Perm(partial)
	for _, i := range order {
		if err := rec.Add(blocks[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range order {
		if err := rec.Add(blocks[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Rank() != partial {
		t.Fatalf("recoder rank = %d, want %d (dependent input must not count)", rec.Rank(), partial)
	}
	if rec.Count() != partial {
		t.Fatalf("recoder holds %d blocks, want %d (dependent input must not be stored)", rec.Count(), partial)
	}

	// Emissions span exactly the partial subspace: the downstream decoder
	// reaches rank `partial` and no further.
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30*p.BlockCount; i++ {
		b, err := rec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Rank() != partial {
		t.Fatalf("decoder rank from partial recoder = %d, want exactly %d", dec.Rank(), partial)
	}
}

// TestRecoderEmitEmpty pins the defined behavior of an empty (rank-0)
// recoder: Emit and NextBlock fail with ErrNoBlocks, a seedless recoder's
// Emit fails with ErrNoSeed, and both leave the recoder usable afterwards.
func TestRecoderEmitEmpty(t *testing.T) {
	p := testParams()
	rec, err := NewRecoder(p, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Emit(); !errors.Is(err, ErrNoBlocks) {
		t.Fatalf("Emit on empty recoder: err = %v, want ErrNoBlocks", err)
	}
	if _, err := rec.NextBlock(rand.New(rand.NewSource(2))); !errors.Is(err, ErrNoBlocks) {
		t.Fatalf("NextBlock on empty recoder: err = %v, want ErrNoBlocks", err)
	}
	seedless, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedless.Emit(); !errors.Is(err, ErrNoSeed) {
		t.Fatalf("Emit on seedless recoder: err = %v, want ErrNoSeed", err)
	}

	// The failures must not wedge the recoder: after one Add it emits.
	seg := randomSegment(t, 0, p, 3)
	enc := NewEncoder(seg, rand.New(rand.NewSource(4)))
	if err := rec.Add(enc.NextBlock()); err != nil {
		t.Fatal(err)
	}
	b, err := rec.Emit()
	if err != nil {
		t.Fatalf("Emit after recovery: %v", err)
	}
	// Single-input passthrough: the emission must still be a valid block
	// inside the 1-dimensional span.
	if err := b.Validate(p); err != nil {
		t.Fatal(err)
	}
}

// TestRecoderSystematicInputs feeds a recoder the full systematic + XOR
// repair + dense tail schedule — including blocks round-tripped through the
// compact XNC2 wire encoding — and requires the recoded stream to decode
// byte-identically. This pins the defined behavior for relays sitting below
// a ModeSystematic origin.
func TestRecoderSystematicInputs(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 64}
	seg := randomSegment(t, 5, p, 301)
	rng := rand.New(rand.NewSource(302))
	se := NewSystematicEncoder(seg, rng)

	rec, err := NewRecoder(p, WithSeed(303))
	if err != nil {
		t.Fatal(err)
	}
	// One full schedule: n verbatim + repair + dense tail. Binary blocks
	// take the XNC2 marshal/unmarshal round trip first, exactly as a relay
	// would receive them off the wire.
	total := p.BlockCount + se.XorRepair() + se.DenseTail()
	for i := 0; i < total; i++ {
		b := se.Block()
		if b.IsBinary() {
			wire, err := b.MarshalBinaryXor()
			if err != nil {
				t.Fatal(err)
			}
			var rt CodedBlock
			if err := rt.UnmarshalRecord(wire); err != nil {
				t.Fatal(err)
			}
			b = &rt
		}
		if err := rec.Add(b); err != nil {
			t.Fatalf("Add systematic block %d: %v", i, err)
		}
	}
	if rec.Rank() != p.BlockCount {
		t.Fatalf("recoder rank = %d after full systematic schedule, want %d", rec.Rank(), p.BlockCount)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		b, err := rec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if dec.Received() > 20*p.BlockCount {
			t.Fatal("recoded systematic stream failed to reach full rank")
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("recoded systematic stream decoded to different bytes")
	}
}

// TestRecoderXorRecode: under WithXorRecode the recoder emits GF(2)
// recombinations — binary input yields binary (XNC2-framable) output — and
// the XOR-only stream still decodes byte-identically. With a dense input in
// the mix the output stops being binary but stays decodable.
func TestRecoderXorRecode(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 64}
	seg := randomSegment(t, 9, p, 401)
	rng := rand.New(rand.NewSource(402))
	se := NewSystematicEncoder(seg, rng, WithDenseTail(0))

	rec, err := NewRecoder(p, WithSeed(403), WithXorRecode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount+se.XorRepair(); i++ {
		if err := rec.Add(se.Block()); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		b, err := rec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsBinary() {
			t.Fatal("XOR recode over binary input emitted a non-binary block")
		}
		// Binary emissions must survive the compact wire encoding.
		if wire, err := b.MarshalBinaryXor(); err != nil {
			t.Fatalf("XNC2 marshal of XOR emission: %v", err)
		} else if len(wire) != XorWireSize(p) {
			t.Fatalf("XNC2 emission wire size = %d, want %d", len(wire), XorWireSize(p))
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if dec.Received() > 40*p.BlockCount {
			t.Fatal("XOR-recoded stream failed to reach full rank")
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("XOR-recoded stream decoded to different bytes")
	}

	// A dense block in the mix: emissions may stop being binary but the
	// combination stays valid and decodable.
	denseRec, err := NewRecoder(p, WithSeed(404), WithXorRecode())
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(seg, rng)
	se.Reset()
	for i := 0; i < p.BlockCount; i++ {
		if err := denseRec.Add(se.Block()); err != nil {
			t.Fatal(err)
		}
	}
	if err := denseRec.Add(enc.NextBlock()); err != nil {
		t.Fatal(err)
	}
	dec2, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec2.Ready() {
		b, err := denseRec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(p); err != nil {
			t.Fatalf("mixed XOR emission invalid: %v", err)
		}
		if _, err := dec2.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if dec2.Received() > 40*p.BlockCount {
			t.Fatal("mixed XOR-recoded stream failed to reach full rank")
		}
	}
	got2, err := dec2.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(seg) {
		t.Fatal("mixed XOR-recoded stream decoded to different bytes")
	}
}

// TestRecoderClonesInput: Add must clone — a caller that reuses its block
// storage (the systematic encoder's zero-alloc emit, a receive loop's
// scratch record) must not corrupt blocks the recoder already holds.
func TestRecoderClonesInput(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	seg := randomSegment(t, 2, p, 501)
	enc := NewEncoder(seg, rand.New(rand.NewSource(502)))

	rec, err := NewRecoder(p, WithSeed(503))
	if err != nil {
		t.Fatal(err)
	}
	b := enc.NextBlock()
	coeffs := append([]byte(nil), b.Coeffs...)
	payload := append([]byte(nil), b.Payload...)
	if err := rec.Add(b); err != nil {
		t.Fatal(err)
	}
	// Trash the caller's copy.
	for i := range b.Coeffs {
		b.Coeffs[i] ^= 0xFF
	}
	for i := range b.Payload {
		b.Payload[i] ^= 0xAA
	}
	got, err := rec.Emit()
	if err != nil {
		t.Fatal(err)
	}
	// With a single held input the emission is a scaled copy: its coeffs
	// must be proportional to the original, never to the trashed storage.
	// Check by comparing the coefficient ratio at every non-zero position.
	var ratio byte
	for i := range got.Coeffs {
		if coeffs[i] == 0 {
			if got.Coeffs[i] != 0 {
				t.Fatal("emission has support outside the held block: mutation leaked in")
			}
			continue
		}
		if ratio == 0 {
			ratio = gfDiv(t, got.Coeffs[i], coeffs[i])
			continue
		}
		if gfDiv(t, got.Coeffs[i], coeffs[i]) != ratio {
			t.Fatal("emission is not a scalar multiple of the original block: mutation leaked in")
		}
	}
	_ = payload // payload proportionality follows from the decode gates above
	if bytes.Equal(got.Coeffs, b.Coeffs) {
		t.Fatal("emission equals the trashed caller storage")
	}
}

// gfDiv is a tiny GF(2^8) division helper over the package's arithmetic,
// used only to verify scalar proportionality in tests.
func gfDiv(t *testing.T, a, b byte) byte {
	t.Helper()
	if b == 0 {
		t.Fatal("division by zero in proportionality check")
	}
	// Brute-force: find q with q·b == a, against the reference multiply the
	// package tests already define (rlnc_test.go).
	for q := 0; q < 256; q++ {
		if mulRef(byte(q), b) == a {
			return byte(q)
		}
	}
	t.Fatal("no quotient found: not a field?")
	return 0
}

// FuzzRecoder drives Add/Emit with adversarial block bytes: arbitrary
// coefficient and payload mutations, hostile segment IDs, and interleaved
// emissions. The recoder must never panic, never exceed rank n, never store
// dependent input, and every successful emission must validate.
func FuzzRecoder(f *testing.F) {
	p := Params{BlockCount: 4, BlockSize: 8}
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(2))
	f.Add([]byte{255, 255, 255, 255}, uint8(0))
	f.Add([]byte{}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, nBlocks uint8) {
		rec, err := NewRecoder(p, WithSeed(1), WithXorRecode())
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewRecoder(p, WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		next := func(n int) []byte {
			out := make([]byte, n)
			for i := range out {
				if off < len(raw) {
					out[i] = raw[off]
					off++
				}
			}
			return out
		}
		for i := 0; i < int(nBlocks%16); i++ {
			b := &CodedBlock{
				SegmentID: uint32(next(1)[0]) % 3,
				Coeffs:    next(p.BlockCount),
				Payload:   next(p.BlockSize),
			}
			for _, r := range []*Recoder{rec, dense} {
				err := r.Add(b)
				if r.Rank() > p.BlockCount {
					t.Fatalf("rank %d exceeds block count %d", r.Rank(), p.BlockCount)
				}
				if r.Count() != r.Rank() {
					t.Fatalf("held %d blocks at rank %d: dependent input stored", r.Count(), r.Rank())
				}
				out, eerr := r.Emit()
				if err == nil && r.Rank() > 0 && eerr != nil {
					t.Fatalf("Emit failed at rank %d: %v", r.Rank(), eerr)
				}
				if r.Rank() == 0 && !errors.Is(eerr, ErrNoBlocks) {
					t.Fatalf("Emit at rank 0: err = %v, want ErrNoBlocks", eerr)
				}
				if out != nil {
					if verr := out.Validate(p); verr != nil {
						t.Fatalf("emitted block invalid: %v", verr)
					}
				}
			}
		}
	})
}
