package rlnc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testParams() Params { return Params{BlockCount: 16, BlockSize: 64} }

func randomSegment(t testing.TB, id uint32, p Params, seed int64) *Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(id, p, data)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"valid", Params{128, 4096}, true},
		{"one", Params{1, 1}, true},
		{"zero n", Params{0, 64}, false},
		{"zero k", Params{16, 0}, false},
		{"negative", Params{-1, 64}, false},
		{"huge n", Params{MaxBlockCount + 1, 64}, false},
		{"huge k", Params{16, MaxBlockSize + 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate(%v) err = %v, ok expectation %v", tc.p, err, tc.ok)
			}
			if err != nil && !errors.Is(err, ErrInvalidParams) {
				t.Fatalf("error %v does not wrap ErrInvalidParams", err)
			}
		})
	}
}

func TestSegmentFromData(t *testing.T) {
	p := testParams()
	short := []byte{1, 2, 3}
	seg, err := SegmentFromData(7, p, short)
	if err != nil {
		t.Fatal(err)
	}
	if seg.ID() != 7 {
		t.Fatalf("ID = %d", seg.ID())
	}
	if !bytes.Equal(seg.Data()[:3], short) {
		t.Fatal("segment prefix not copied")
	}
	for _, b := range seg.Data()[3:] {
		if b != 0 {
			t.Fatal("padding not zeroed")
		}
	}
	if _, err := SegmentFromData(0, p, make([]byte, p.SegmentSize()+1)); err == nil {
		t.Fatal("oversized data accepted")
	}
	// Mutating the input must not affect the segment.
	short[0] = 0xEE
	if seg.Data()[0] == 0xEE {
		t.Fatal("segment aliases caller data")
	}
}

func TestSegmentBlocksAlias(t *testing.T) {
	p := testParams()
	seg, err := NewSegment(0, p)
	if err != nil {
		t.Fatal(err)
	}
	seg.Block(2)[0] = 0x42
	if seg.Data()[2*p.BlockSize] != 0x42 {
		t.Fatal("Block does not alias Data")
	}
	if len(seg.Blocks()) != p.BlockCount {
		t.Fatal("Blocks length wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range []Params{{1, 8}, {4, 16}, {16, 64}, {64, 256}, {128, 128}} {
		seg := randomSegment(t, 3, p, int64(p.BlockCount))
		rng := rand.New(rand.NewSource(99))
		enc := NewEncoder(seg, rng)
		dec, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		for !dec.Ready() {
			if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dec.Segment()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(seg) {
			t.Fatalf("params %v: decoded segment differs", p)
		}
	}
}

func TestDecoderDetectsDependence(t *testing.T) {
	p := testParams()
	seg := randomSegment(t, 0, p, 5)
	rng := rand.New(rand.NewSource(6))
	enc := NewEncoder(seg, rng)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	b := enc.NextBlock()
	if innov, _ := dec.AddBlock(b); !innov {
		t.Fatal("first block not innovative")
	}
	// The same block again is linearly dependent.
	if innov, err := dec.AddBlock(b.Clone()); err != nil || innov {
		t.Fatalf("duplicate block: innovative=%v err=%v", innov, err)
	}
	// A scalar multiple is dependent too.
	scaled := b.Clone()
	for i := range scaled.Coeffs {
		scaled.Coeffs[i] = mulRef(scaled.Coeffs[i], 0x1D)
	}
	for i := range scaled.Payload {
		scaled.Payload[i] = mulRef(scaled.Payload[i], 0x1D)
	}
	if innov, err := dec.AddBlock(scaled); err != nil || innov {
		t.Fatalf("scaled block: innovative=%v err=%v", innov, err)
	}
	if dec.Dependent() != 2 || dec.Received() != 3 || dec.Rank() != 1 {
		t.Fatalf("stats: dep=%d recv=%d rank=%d", dec.Dependent(), dec.Received(), dec.Rank())
	}
}

// mulRef reimplements GF multiply locally to avoid import cycles in tests.
func mulRef(a, b byte) byte {
	var p uint16
	aa, bb := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= aa
		}
		bb >>= 1
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= 0x11B
		}
	}
	return byte(p)
}

func TestDecoderRejectsWrongSegmentAndShape(t *testing.T) {
	p := testParams()
	segA := randomSegment(t, 1, p, 7)
	segB := randomSegment(t, 2, p, 8)
	rng := rand.New(rand.NewSource(9))
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.AddBlock(NewEncoder(segA, rng).NextBlock()); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.AddBlock(NewEncoder(segB, rng).NextBlock()); !errors.Is(err, ErrWrongSegment) {
		t.Fatalf("wrong-segment err = %v", err)
	}
	bad := &CodedBlock{SegmentID: 1, Coeffs: make([]byte, 3), Payload: make([]byte, p.BlockSize)}
	if _, err := dec.AddBlock(bad); err == nil {
		t.Fatal("short coefficient vector accepted")
	}
	if _, err := dec.Segment(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Segment before ready err = %v", err)
	}
}

func TestDecoderEarlyBlockDelivery(t *testing.T) {
	p := Params{BlockCount: 4, BlockSize: 8}
	seg := randomSegment(t, 0, p, 11)
	// Feed unit-vector "coded" blocks: each is immediately a source block.
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	enc := NewEncoder(seg, rng)
	for i := 0; i < p.BlockCount; i++ {
		coeffs := make([]byte, p.BlockCount)
		coeffs[i] = 1
		b, err := enc.BlockFor(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		got, ok := dec.Block(i)
		if !ok {
			t.Fatalf("block %d not deliverable after its unit vector arrived", i)
		}
		if !bytes.Equal(got, seg.Block(i)) {
			t.Fatalf("early-delivered block %d differs", i)
		}
	}
	if _, ok := dec.Block(-1); ok {
		t.Fatal("out-of-range Block delivered")
	}
}

func TestBatchDecoderMatchesProgressive(t *testing.T) {
	p := Params{BlockCount: 24, BlockSize: 96}
	seg := randomSegment(t, 4, p, 13)
	rng := rand.New(rand.NewSource(14))
	enc := NewEncoder(seg, rng)

	batch, err := NewBatchDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount+4; i++ { // over-collect: extras must be harmless
		b := enc.NextBlock()
		if err := batch.Add(b); err != nil {
			t.Fatal(err)
		}
		if _, err := prog.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := batch.Decode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !got.Equal(seg) {
		t.Fatal("batch decode differs from progressive decode or source")
	}
}

func TestBatchDecoderRankDeficient(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 16}
	seg := randomSegment(t, 0, p, 15)
	rng := rand.New(rand.NewSource(16))
	enc := NewEncoder(seg, rng)
	batch, err := NewBatchDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	one := enc.NextBlock()
	for i := 0; i < p.BlockCount; i++ { // n copies of the same block
		if err := batch.Add(one.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := batch.Decode(); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("rank-deficient decode err = %v", err)
	}
}

func TestRecoderPreservesDecodability(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 48}
	seg := randomSegment(t, 9, p, 17)
	rng := rand.New(rand.NewSource(18))
	enc := NewEncoder(seg, rng)

	// Hop 1: relay receives n blocks and recodes.
	relay1, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount; i++ {
		if err := relay1.Add(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	// Hop 2: second relay receives only recoded blocks.
	relay2, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount+2; i++ {
		b, err := relay1.NextBlock(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := relay2.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	// Sink decodes from hop-2 output only.
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		b, err := relay2.NextBlock(rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if dec.Received() > 20*p.BlockCount {
			t.Fatal("recoded stream failed to reach full rank")
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("segment decoded from two recoding hops differs from source")
	}
}

func TestRecoderValidation(t *testing.T) {
	p := testParams()
	r, err := NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextBlock(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty recoder produced a block")
	}
	seg := randomSegment(t, 1, p, 19)
	rng := rand.New(rand.NewSource(20))
	if err := r.Add(NewEncoder(seg, rng).NextBlock()); err != nil {
		t.Fatal(err)
	}
	other := randomSegment(t, 2, p, 21)
	if err := r.Add(NewEncoder(other, rng).NextBlock()); err == nil {
		t.Fatal("cross-segment block accepted by recoder")
	}
	if r.Count() != 1 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestCodedBlockWireRoundTrip(t *testing.T) {
	p := testParams()
	seg := randomSegment(t, 0xDEADBEEF, p, 22)
	rng := rand.New(rand.NewSource(23))
	b := NewEncoder(seg, rng).NextBlock()
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != b.WireSize() {
		t.Fatalf("wire size %d, want %d", len(data), b.WireSize())
	}
	var got CodedBlock
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.SegmentID != b.SegmentID || !bytes.Equal(got.Coeffs, b.Coeffs) || !bytes.Equal(got.Payload, b.Payload) {
		t.Fatal("wire round trip altered the block")
	}
}

func TestCodedBlockWireCorruption(t *testing.T) {
	p := testParams()
	seg := randomSegment(t, 1, p, 24)
	rng := rand.New(rand.NewSource(25))
	b := NewEncoder(seg, rng).NextBlock()
	good, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'Y'
		if err := new(CodedBlock).UnmarshalBinary(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[wireHeaderLen+len(b.Coeffs)+3] ^= 0x80
		if err := new(CodedBlock).UnmarshalBinary(bad); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := new(CodedBlock).UnmarshalBinary(good[:10]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
		if err := new(CodedBlock).UnmarshalBinary(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("absurd dimensions", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0xFF
		if err := new(CodedBlock).UnmarshalBinary(bad); err == nil {
			t.Fatal("absurd n accepted")
		}
	})
}

// TestWireRoundTripProperty fuzzes marshal/unmarshal over random shapes.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{BlockCount: 1 + rng.Intn(32), BlockSize: 1 + rng.Intn(128)}
		b := &CodedBlock{
			SegmentID: rng.Uint32(),
			Coeffs:    make([]byte, p.BlockCount),
			Payload:   make([]byte, p.BlockSize),
		}
		rng.Read(b.Coeffs)
		rng.Read(b.Payload)
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.SegmentID == b.SegmentID &&
			bytes.Equal(got.Coeffs, b.Coeffs) &&
			bytes.Equal(got.Payload, b.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseEncoderStillDecodes(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 32}
	seg := randomSegment(t, 0, p, 26)
	rng := rand.New(rand.NewSource(27))
	enc := NewEncoder(seg, rng, WithDensity(0.25))
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
		if dec.Received() > 50*p.BlockCount {
			t.Fatal("sparse stream failed to reach full rank")
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("sparse decode differs")
	}
}

func TestEncoderBlockForValidation(t *testing.T) {
	p := testParams()
	seg := randomSegment(t, 0, p, 28)
	enc := NewEncoder(seg, rand.New(rand.NewSource(29)))
	if _, err := enc.BlockFor(make([]byte, p.BlockCount-1)); err == nil {
		t.Fatal("short coefficient vector accepted")
	}
}

func TestSplitReassemble(t *testing.T) {
	p := Params{BlockCount: 4, BlockSize: 16} // 64-byte segments
	for _, length := range []int{0, 1, 63, 64, 65, 200} {
		rng := rand.New(rand.NewSource(int64(length)))
		data := make([]byte, length)
		rng.Read(data)
		obj, err := Split(data, p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := obj.Reassemble()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("length %d: reassembly differs", length)
		}
	}
}

func TestReassembleMissingSegment(t *testing.T) {
	p := Params{BlockCount: 2, BlockSize: 8}
	data := make([]byte, 40)
	obj, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReassembleSegments(obj.Segments[1:], obj.Length, p); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitCodeDecodeEndToEnd(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	payload := make([]byte, 3*p.SegmentSize()-17)
	rand.New(rand.NewSource(30)).Read(payload)
	obj, err := Split(payload, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	decoded := make([]*Segment, 0, len(obj.Segments))
	for _, seg := range obj.Segments {
		enc := NewEncoder(seg, rng)
		dec, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		for !dec.Ready() {
			if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
				t.Fatal(err)
			}
		}
		s, err := dec.Segment()
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, s)
	}
	back, err := ReassembleSegments(decoded, len(payload), p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("end-to-end object differs")
	}
}

func TestParallelEncoderModesMatchSerial(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 100} // k not divisible by workers
	seg := randomSegment(t, 0, p, 32)
	const count, seed = 13, 777

	serialRng := rand.New(rand.NewSource(seed))
	serialEnc := NewEncoder(seg, serialRng)
	want := make([]*CodedBlock, count)
	for i := range want {
		want[i] = serialEnc.NextBlock()
	}

	for _, mode := range []EncodeMode{PartitionedBlock, FullBlock} {
		for _, workers := range []int{1, 3, 8} {
			pe, err := NewParallelEncoder(workers, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pe.Encode(seg, count, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(got[i].Coeffs, want[i].Coeffs) || !bytes.Equal(got[i].Payload, want[i].Payload) {
					t.Fatalf("mode %v workers %d: block %d differs from serial", mode, workers, i)
				}
			}
		}
	}
}

func TestParallelEncoderValidation(t *testing.T) {
	if _, err := NewParallelEncoder(0, FullBlock); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewParallelEncoder(2, EncodeMode(99)); err == nil {
		t.Fatal("bogus mode accepted")
	}
	pe, err := NewParallelEncoder(2, FullBlock)
	if err != nil {
		t.Fatal(err)
	}
	seg := randomSegment(t, 0, testParams(), 33)
	if _, err := pe.Encode(seg, 0, 1); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestDecodeSegmentsParallel(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 64}
	const segCount = 6
	rng := rand.New(rand.NewSource(34))
	segs := make([]*Segment, segCount)
	blocks := make([][]*CodedBlock, segCount)
	for i := range segs {
		segs[i] = randomSegment(t, uint32(i), p, int64(40+i))
		enc := NewEncoder(segs[i], rng)
		for j := 0; j < p.BlockCount+2; j++ {
			blocks[i] = append(blocks[i], enc.NextBlock())
		}
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := DecodeSegmentsParallel(context.Background(), p, blocks, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range segs {
			if !got[i].Equal(segs[i]) {
				t.Fatalf("workers %d: segment %d differs", workers, i)
			}
		}
	}
	if _, err := DecodeSegmentsParallel(context.Background(), p, blocks, 0); !errors.Is(err, ErrWorkerCount) {
		t.Fatalf("zero workers: err = %v, want ErrWorkerCount", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecodeSegmentsParallel(cancelled, p, blocks, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestEncodeModeString(t *testing.T) {
	if PartitionedBlock.String() == "" || FullBlock.String() == "" || EncodeMode(42).String() == "" {
		t.Fatal("EncodeMode String incomplete")
	}
}

func BenchmarkHostEncode(b *testing.B) {
	for _, p := range []Params{{128, 4096}, {256, 4096}, {512, 4096}} {
		seg := randomSegment(b, 0, p, 1)
		rng := rand.New(rand.NewSource(2))
		enc := NewEncoder(seg, rng)
		coeffs := enc.NextCoeffs()
		dst := make([]byte, p.BlockSize)
		b.Run(p.String(), func(b *testing.B) {
			b.SetBytes(int64(p.BlockSize))
			for i := 0; i < b.N; i++ {
				EncodeInto(dst, seg, coeffs)
			}
		})
	}
}

func BenchmarkHostDecodeProgressive(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(b, 0, p, 3)
	rng := rand.New(rand.NewSource(4))
	enc := NewEncoder(seg, rng)
	blocks := make([]*CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	b.SetBytes(int64(p.SegmentSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.AddBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
		if !dec.Ready() {
			b.Fatal("not ready")
		}
	}
}

func BenchmarkHostDecodeBatch(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(b, 0, p, 5)
	rng := rand.New(rand.NewSource(6))
	enc := NewEncoder(seg, rng)
	blocks := make([]*CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	b.SetBytes(int64(p.SegmentSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewBatchDecoder(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}
