package rlnc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
)

// Seeded coded blocks: a practical-deployment optimization the coefficient
// overhead analysis of Sec. 4.3 motivates. A dense coefficient vector costs
// n bytes per packet (n/k relative overhead — 12.5% at n=512, k=4096). When
// the *source* generates the block, the receiver can regenerate the whole
// vector from the (generator, seed) pair, shrinking the header to 8 bytes.
// Recoded blocks cannot stay seeded (the recombination is data-dependent),
// so SeededBlock converts to a plain CodedBlock for recoding.

// seededWireMagic distinguishes seeded blocks from plain ones ("XNS1").
const seededWireMagic = "XNS1"

// seededWireLen: magic(4) + segmentID(4) + n(4) + k(4) + seed(8) + payload + crc(4).
const (
	seededHeaderLen  = 24
	seededTrailerLen = 4
)

// ErrNotSeeded reports that bytes do not hold a seeded block.
var ErrNotSeeded = errors.New("rlnc: not a seeded coded block")

// SeededBlock is a coded block whose coefficient vector is represented by
// the PRNG seed that generated it.
type SeededBlock struct {
	SegmentID  uint32
	BlockCount int
	Seed       int64
	Payload    []byte
}

// CoeffsFromSeed regenerates the dense coefficient vector a seed denotes:
// n bytes uniform on [1, 255], matching Encoder.NextCoeffs at density 1.
func CoeffsFromSeed(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	coeffs := make([]byte, n)
	for i := range coeffs {
		coeffs[i] = byte(1 + rng.Intn(255))
	}
	return coeffs
}

// NextSeededBlock draws a fresh seed from the encoder's stream and returns
// the corresponding seeded block.
func (e *Encoder) NextSeededBlock() (*SeededBlock, error) {
	if e.density < 1 {
		return nil, fmt.Errorf("%w: density %.2f", ErrSeededDense, e.density)
	}
	seed := e.rng.Int63()
	p := e.seg.params
	coeffs := CoeffsFromSeed(seed, p.BlockCount)
	payload := make([]byte, p.BlockSize)
	EncodeInto(payload, e.seg, coeffs)
	return &SeededBlock{
		SegmentID:  e.seg.id,
		BlockCount: p.BlockCount,
		Seed:       seed,
		Payload:    payload,
	}, nil
}

// Expand converts the seeded block into a plain CodedBlock (regenerating
// the coefficient vector), as needed for decoding or recoding.
func (b *SeededBlock) Expand() *CodedBlock {
	return &CodedBlock{
		SegmentID: b.SegmentID,
		Coeffs:    CoeffsFromSeed(b.Seed, b.BlockCount),
		Payload:   append([]byte(nil), b.Payload...),
	}
}

// WireSize returns the marshaled length.
func (b *SeededBlock) WireSize() int {
	return seededHeaderLen + len(b.Payload) + seededTrailerLen
}

// HeaderOverhead returns the wire bytes spent on coefficients relative to a
// plain coded block: 8 seed bytes instead of BlockCount.
func (b *SeededBlock) HeaderOverhead() (seeded, plain int) {
	return 8, b.BlockCount
}

// MarshalBinary encodes the seeded block.
func (b *SeededBlock) MarshalBinary() ([]byte, error) {
	p := Params{BlockCount: b.BlockCount, BlockSize: len(b.Payload)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, b.WireSize())
	copy(out, seededWireMagic)
	binary.BigEndian.PutUint32(out[4:], b.SegmentID)
	binary.BigEndian.PutUint32(out[8:], uint32(b.BlockCount))
	binary.BigEndian.PutUint32(out[12:], uint32(len(b.Payload)))
	binary.BigEndian.PutUint64(out[16:], uint64(b.Seed))
	copy(out[seededHeaderLen:], b.Payload)
	sum := crc32.ChecksumIEEE(out[:len(out)-seededTrailerLen])
	binary.BigEndian.PutUint32(out[len(out)-seededTrailerLen:], sum)
	return out, nil
}

// UnmarshalBinary decodes a seeded block, validating magic, lengths and
// checksum.
func (b *SeededBlock) UnmarshalBinary(data []byte) error {
	if len(data) < seededHeaderLen+seededTrailerLen {
		return ErrTruncated
	}
	if string(data[:4]) != seededWireMagic {
		return ErrNotSeeded
	}
	n := int(binary.BigEndian.Uint32(data[8:]))
	k := int(binary.BigEndian.Uint32(data[12:]))
	p := Params{BlockCount: n, BlockSize: k}
	if err := p.Validate(); err != nil {
		return err
	}
	want := seededHeaderLen + k + seededTrailerLen
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrTruncated, len(data), want)
	}
	sum := crc32.ChecksumIEEE(data[:len(data)-seededTrailerLen])
	if sum != binary.BigEndian.Uint32(data[len(data)-seededTrailerLen:]) {
		return ErrBadChecksum
	}
	b.SegmentID = binary.BigEndian.Uint32(data[4:])
	b.BlockCount = n
	b.Seed = int64(binary.BigEndian.Uint64(data[16:]))
	b.Payload = append(b.Payload[:0], data[seededHeaderLen:seededHeaderLen+k]...)
	return nil
}
