package rlnc

import (
	"bytes"
	"fmt"
)

// Segment is one generation of source data: BlockCount blocks of BlockSize
// bytes stored contiguously (the paper's "media segment").
type Segment struct {
	id     uint32
	params Params
	data   []byte   // length params.SegmentSize()
	rows   [][]byte // per-block views into data, built by the constructors
}

// NewSegment returns a zero-filled segment.
func NewSegment(id uint32, p Params) (*Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Segment{id: id, params: p, data: make([]byte, p.SegmentSize())}
	s.blockRows()
	return s, nil
}

// SegmentFromData builds a segment from up to SegmentSize bytes, copying the
// input and zero-padding the tail. Length recovery across padding is the
// caller's concern (see Object in generation.go).
func SegmentFromData(id uint32, p Params, data []byte) (*Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) > p.SegmentSize() {
		return nil, fmt.Errorf("%w: %d bytes exceed segment size %d", ErrDataTooLarge, len(data), p.SegmentSize())
	}
	s := &Segment{id: id, params: p, data: make([]byte, p.SegmentSize())}
	copy(s.data, data)
	s.blockRows()
	return s, nil
}

// ID returns the segment identifier carried by every coded block.
func (s *Segment) ID() uint32 { return s.id }

// Params returns the coding configuration.
func (s *Segment) Params() Params { return s.params }

// Block returns source block i as a slice aliasing the segment storage.
func (s *Segment) Block(i int) []byte {
	k := s.params.BlockSize
	return s.data[i*k : (i+1)*k : (i+1)*k]
}

// Blocks returns all source blocks as aliasing slices. The slice is built
// once at construction time (the encode hot path calls this per coded
// block), so it is safe to call concurrently; callers must not modify the
// slice itself, only the block contents.
func (s *Segment) Blocks() [][]byte {
	if s.rows != nil {
		return s.rows
	}
	rows := make([][]byte, s.params.BlockCount)
	for i := range rows {
		rows[i] = s.Block(i)
	}
	return rows
}

// blockRows builds the cached per-block views; called by the constructors.
func (s *Segment) blockRows() {
	s.rows = make([][]byte, s.params.BlockCount)
	for i := range s.rows {
		s.rows[i] = s.Block(i)
	}
}

// Data returns the full contiguous payload (aliased, not copied).
func (s *Segment) Data() []byte { return s.data }

// Equal reports whether two segments carry identical parameters and bytes.
func (s *Segment) Equal(o *Segment) bool {
	return s.id == o.id && s.params == o.params && bytes.Equal(s.data, o.data)
}
