package rlnc

import (
	"bytes"
	"fmt"
)

// Segment is one generation of source data: BlockCount blocks of BlockSize
// bytes stored contiguously (the paper's "media segment").
type Segment struct {
	id     uint32
	params Params
	data   []byte // length params.SegmentSize()
}

// NewSegment returns a zero-filled segment.
func NewSegment(id uint32, p Params) (*Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Segment{id: id, params: p, data: make([]byte, p.SegmentSize())}, nil
}

// SegmentFromData builds a segment from up to SegmentSize bytes, copying the
// input and zero-padding the tail. Length recovery across padding is the
// caller's concern (see Object in generation.go).
func SegmentFromData(id uint32, p Params, data []byte) (*Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) > p.SegmentSize() {
		return nil, fmt.Errorf("rlnc: %d bytes exceed segment size %d", len(data), p.SegmentSize())
	}
	s := &Segment{id: id, params: p, data: make([]byte, p.SegmentSize())}
	copy(s.data, data)
	return s, nil
}

// ID returns the segment identifier carried by every coded block.
func (s *Segment) ID() uint32 { return s.id }

// Params returns the coding configuration.
func (s *Segment) Params() Params { return s.params }

// Block returns source block i as a slice aliasing the segment storage.
func (s *Segment) Block(i int) []byte {
	k := s.params.BlockSize
	return s.data[i*k : (i+1)*k : (i+1)*k]
}

// Blocks returns all source blocks as aliasing slices.
func (s *Segment) Blocks() [][]byte {
	rows := make([][]byte, s.params.BlockCount)
	for i := range rows {
		rows[i] = s.Block(i)
	}
	return rows
}

// Data returns the full contiguous payload (aliased, not copied).
func (s *Segment) Data() []byte { return s.data }

// Equal reports whether two segments carry identical parameters and bytes.
func (s *Segment) Equal(o *Segment) bool {
	return s.id == o.id && s.params == o.params && bytes.Equal(s.data, o.data)
}
