package rlnc

import (
	"math/rand"

	"extremenc/internal/gf256"
)

// SystematicEncoder is the first-class systematic + XOR-repair encoder mode:
// the wire-speed path for lightly-lossy links. Each cycle emits, in order,
//
//  1. every source block verbatim (unit coefficient vectors) — in the
//     loss-free case receivers decode with zero elimination work;
//  2. XorRepair GF(2) repair blocks, whose coefficient vector is a random
//     bitmask and whose payload is a pure XOR of the selected source blocks —
//     these repair typical loss patterns with no GF(2^8) arithmetic on
//     either side ("Balanced XOR-ed Coding", PAPERS.md);
//  3. DenseTail dense GF(2^8) blocks for the final ranks, where a random
//     GF(2) combination is dependent with probability ≈ 1/2 per missing rank
//     but a dense one only ≈ 1/256 ("Linear-Complexity Overhead-Optimized
//     RLNC", PAPERS.md).
//
// then restarts, so late-joining receivers on a push stream catch a full
// systematic sweep within one cycle. The progressive Decoder consumes all
// three phases transparently and stays on its XOR-only elimination fast path
// until the first dense block arrives.
type SystematicEncoder struct {
	enc    *Encoder
	next   int // next source block to emit verbatim
	repair int // repair blocks emitted this cycle (XOR + dense)

	xorRepair int // GF(2) repair blocks per cycle
	denseTail int // dense GF(2^8) blocks per cycle

	// Reusable emit storage: Block returns a view assembled from these, so
	// steady-state emission allocates nothing.
	blk     CodedBlock
	coeffs  []byte
	payload []byte
}

// SystematicOption configures a SystematicEncoder.
type SystematicOption func(*SystematicEncoder)

// WithXorRepair sets how many GF(2) XOR repair blocks each cycle emits after
// the systematic sweep (default max(4, n/8)). More XOR repair tolerates
// higher loss without GF(2^8) arithmetic; at zero the encoder goes straight
// to dense blocks.
func WithXorRepair(r int) SystematicOption {
	return func(s *SystematicEncoder) { s.xorRepair = max(r, 0) }
}

// WithDenseTail sets how many dense GF(2^8) blocks close each cycle (default
// 2). This is the dense-fallback rank threshold: the number of missing ranks
// the cycle can close with near-certain innovation where GF(2) combinations
// would coin-flip.
func WithDenseTail(t int) SystematicOption {
	return func(s *SystematicEncoder) { s.denseTail = max(t, 0) }
}

// NewSystematicEncoder wraps seg in a systematic encoder driven by rng.
func NewSystematicEncoder(seg *Segment, rng *rand.Rand, opts ...SystematicOption) *SystematicEncoder {
	p := seg.params
	s := &SystematicEncoder{
		enc:       NewEncoder(seg, rng),
		xorRepair: max(4, p.BlockCount/8),
		denseTail: 2,
		coeffs:    make([]byte, p.BlockCount),
		payload:   make([]byte, p.BlockSize),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// SystematicRemaining reports how many verbatim blocks are still to come in
// the current cycle. A completed cycle counts as a fresh one: the next Block
// call rolls into its systematic sweep.
func (s *SystematicEncoder) SystematicRemaining() int {
	n := s.enc.seg.params.BlockCount
	if s.next >= n {
		if s.repair >= s.xorRepair+s.denseTail {
			return n
		}
		return 0
	}
	return n - s.next
}

// XorRepair returns the per-cycle GF(2) repair block count.
func (s *SystematicEncoder) XorRepair() int { return s.xorRepair }

// DenseTail returns the per-cycle dense-fallback block count.
func (s *SystematicEncoder) DenseTail() int { return s.denseTail }

// SetSchedule retunes the per-cycle repair schedule mid-stream — the brownout
// lever: a server under pressure thins the schedule (fewer XOR repairs, no
// dense tail) to trade repair margin for encode CPU, and restores it when the
// pressure clears. Negative values clamp to zero, matching the WithXorRepair
// and WithDenseTail options. The change takes effect within the current
// cycle: the phase counters are compared against the new schedule on the very
// next Block call. Not safe to call concurrently with Block.
func (s *SystematicEncoder) SetSchedule(xorRepair, denseTail int) {
	s.xorRepair = max(xorRepair, 0)
	s.denseTail = max(denseTail, 0)
}

// Block emits the next block of the cycle without allocating: the returned
// block is a view over the encoder's reusable storage (and, for systematic
// blocks, over the segment itself) and is valid only until the next Block,
// NextBlock, or Reset call. Callers that retain blocks use NextBlock.
func (s *SystematicEncoder) Block() *CodedBlock {
	seg := s.enc.seg
	n := seg.params.BlockCount
	// Cycle-complete check up front rather than after the last repair emit,
	// so a schedule with a zero dense tail (or one shrunk mid-cycle by
	// SetSchedule) rolls straight into the next sweep without emitting a
	// stray dense block.
	if s.next >= n && s.repair >= s.xorRepair+s.denseTail {
		s.next, s.repair = 0, 0
	}
	s.blk.SegmentID = seg.id
	s.blk.Coeffs = s.coeffs
	switch {
	case s.next < n:
		// Phase 1: source block verbatim. The payload aliases the segment —
		// a systematic emit is free of both arithmetic and copying.
		clear(s.coeffs)
		s.coeffs[s.next] = 1
		s.blk.Payload = seg.Block(s.next)
		s.next++
	case s.repair < s.xorRepair:
		// Phase 2: GF(2) repair. A random non-zero bitmask selects source
		// blocks; the payload is their pure XOR through the fused kernel.
		s.randomBitmask()
		xorRowsInto(s.payload, seg.Blocks(), s.coeffs)
		s.blk.Payload = s.payload
		s.repair++
	default:
		// Phase 3: dense GF(2^8) fallback for the final ranks.
		for i := range s.coeffs {
			s.coeffs[i] = byte(1 + s.enc.rng.Intn(255))
		}
		EncodeInto(s.payload, seg, s.coeffs)
		s.blk.Payload = s.payload
		s.repair++
	}
	return &s.blk
}

// randomBitmask fills the coefficient scratch with a random GF(2) vector —
// 64 fair coin flips per rng draw — redrawing until at least two sources are
// selected (one, when n == 1): a single-bit mask would just duplicate a
// systematic block instead of repairing across losses.
func (s *SystematicEncoder) randomBitmask() {
	minBits := min(2, len(s.coeffs))
	for {
		var w uint64
		bits := 0
		for i := range s.coeffs {
			if i%64 == 0 {
				w = s.enc.rng.Uint64()
			}
			bit := byte(w & 1)
			w >>= 1
			s.coeffs[i] = bit
			bits += int(bit)
		}
		if bits >= minBits {
			return
		}
	}
}

// NextBlock returns an owned copy of the next block in the cycle. It is the
// retaining counterpart of Block, kept with the historical (block, error)
// signature; the error is always nil.
func (s *SystematicEncoder) NextBlock() (*CodedBlock, error) {
	return s.Block().Clone(), nil
}

// Reset restarts the cycle at the systematic phase (e.g. for a new receiver
// round).
func (s *SystematicEncoder) Reset() { s.next, s.repair = 0, 0 }

// xorRowsInto computes dst = ⊕ rows[i] over every i with coeffs[i] != 0,
// folding four sources per destination pass through the fused GF(2) kernel.
// All selected rows must be at least len(dst) bytes.
func xorRowsInto(dst []byte, rows [][]byte, coeffs []byte) {
	clear(dst)
	var sel [4][]byte
	cnt := 0
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		sel[cnt] = rows[i]
		cnt++
		if cnt == 4 {
			gf256.XorSlice4(dst, sel[0], sel[1], sel[2], sel[3])
			cnt = 0
		}
	}
	for j := 0; j < cnt; j++ {
		gf256.XorSlice(dst, sel[j][:len(dst)])
	}
}
