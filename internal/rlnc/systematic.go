package rlnc

import (
	"fmt"
	"math/rand"
)

// SystematicEncoder emits each source block verbatim once (as a
// unit-coefficient coded block) before switching to random combinations —
// the standard practical refinement: in the loss-free case receivers decode
// with zero elimination work, and any losses are repaired by the coded
// tail. The progressive Decoder consumes both phases transparently.
type SystematicEncoder struct {
	enc  *Encoder
	next int // next source block to emit verbatim
}

// NewSystematicEncoder wraps seg in a systematic encoder.
func NewSystematicEncoder(seg *Segment, rng *rand.Rand) *SystematicEncoder {
	return &SystematicEncoder{enc: NewEncoder(seg, rng)}
}

// SystematicRemaining reports how many verbatim blocks are still to come.
func (s *SystematicEncoder) SystematicRemaining() int {
	n := s.enc.seg.params.BlockCount
	if s.next >= n {
		return 0
	}
	return n - s.next
}

// NextBlock returns the next verbatim source block, or a random combination
// once the systematic phase is exhausted.
func (s *SystematicEncoder) NextBlock() (*CodedBlock, error) {
	n := s.enc.seg.params.BlockCount
	if s.next < n {
		coeffs := make([]byte, n)
		coeffs[s.next] = 1
		s.next++
		b, err := s.enc.BlockFor(coeffs)
		if err != nil {
			return nil, fmt.Errorf("rlnc: systematic block: %w", err)
		}
		return b, nil
	}
	return s.enc.NextBlock(), nil
}

// Reset restarts the systematic phase (e.g. for a new receiver round).
func (s *SystematicEncoder) Reset() { s.next = 0 }
