package rlnc

import (
	"fmt"

	"extremenc/internal/gf256"
	"extremenc/internal/obs"
)

// stageTwoStage times one full two-stage decode (inversion plus the batch
// reconstruction multiply). Free when no obs sink is installed.
var stageTwoStage = obs.StageOf("rlnc.decode_two_stage")

// Two-stage decode — the paper's multi-segment scheme (Sec. 5.2) as an
// explicit host-codec pipeline. Stage 1 inverts the n×n coefficient matrix
// by Gauss–Jordan elimination on the augmented [C | I] form only: rows are
// 2n bytes, so the whole elimination runs over an L1-resident working set
// instead of dragging k-byte payloads through every row operation the way
// progressive decoding does. Stage 2 recovers all n source blocks with a
// single encode-shaped dense multiplication b = C⁻¹·x through the tiled
// batch kernel (encodebatch.go). Both stages draw their working storage from
// the shared scratch pool.

// DecodeTwoStage recovers one segment from coded blocks using the two-stage
// (invert-then-multiply) pipeline. It selects the first spanning subset of
// the given blocks in arrival order and fails with ErrRankDeficient when the
// blocks do not span the segment. Extra blocks beyond rank n are ignored, so
// over-collection is harmless.
func DecodeTwoStage(p Params, blocks []*CodedBlock) (*Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := GetScratch()
	defer PutScratch(s)
	return decodeTwoStageWith(s, p, blocks)
}

// decodeTwoStageWith is DecodeTwoStage against caller-owned scratch — the
// form the pool workers use so each worker's warm workspace is reused across
// segments.
func decodeTwoStageWith(s *Scratch, p Params, blocks []*CodedBlock) (*Segment, error) {
	defer stageTwoStage.Start().End()
	var segID uint32
	haveSeg := false
	for _, b := range blocks {
		if err := b.Validate(p); err != nil {
			return nil, err
		}
		if haveSeg && b.SegmentID != segID {
			return nil, wrongSegmentError(segID, b.SegmentID)
		}
		segID, haveSeg = b.SegmentID, true
	}
	n, k := p.BlockCount, p.BlockSize
	payloads, inv := s.rowViews(n)

	// Stage 1: C⁻¹ via [C | I], payload-free. Subset selection is folded into
	// the inversion — the forward sweep IS the rank probe.
	aug, err := invertCoeffs(s, p, blocks, payloads)
	if err != nil {
		return nil, err
	}

	// Stage 2: b = C⁻¹ · x as one tiled batch multiply over the received
	// payloads.
	seg, err := NewSegment(segID, p)
	if err != nil {
		return nil, err
	}
	for c := 0; c < n; c++ {
		inv[c] = aug[c][n : 2*n : 2*n]
	}
	encodeBatchRange(seg.Blocks(), payloads, inv, 0, k)
	return seg, nil
}

// invertCoeffs selects the first spanning subset of blocks in arrival order
// while building [C | I] in scratch storage and reducing it to [I | C⁻¹].
// Candidates are absorbed row-incrementally into echelon form, so the forward
// sweep doubles as the rank probe — a block that reduces to zero is dependent
// and skipped, and the identity seed of accepted row i is e_i. Row operations
// run over the live column span only: a pivot row is zero left of its pivot,
// and after acc acceptances the right half is populated no further than
// column n+acc. The deferred bottom-up back-substitution then sweeps four
// pivot rows at a time — the same fused shape as the Gaussian decoder's final
// pass — again span-trimmed, since a finished pivot row c is e_c on the left.
//
// On success aug[c] is the augmented row with pivot column c (so
// aug[c][n:2n] is row c of C⁻¹) and payloads[i] holds the payload of the
// i-th accepted block.
func invertCoeffs(s *Scratch, p Params, blocks []*CodedBlock, payloads [][]byte) ([][]byte, error) {
	n := p.BlockCount
	w := 2 * n
	buf := s.Bytes(n * w)
	aug := s.augRows(n) // indexed by pivot column once a row is accepted
	for c := range aug {
		aug[c] = nil
	}
	acc := 0
	for _, b := range blocks {
		if acc == n {
			break
		}
		row := buf[acc*w : (acc+1)*w : (acc+1)*w]
		copy(row, b.Coeffs)
		clear(row[n:])
		row[n+acc] = 1
		// Live columns: the left half plus right-half seeds placed so far.
		rhs := n + acc + 1
		pivot := -1
		for c := 0; c < n; c++ {
			f := row[c]
			if f == 0 {
				continue
			}
			if pr := aug[c]; pr != nil {
				gf256.MulAddSlice(row[c:rhs], pr[c:rhs], f)
				continue
			}
			pivot = c
			break
		}
		if pivot < 0 {
			continue // linearly dependent arrival; keep probing
		}
		if pv := row[pivot]; pv != 1 {
			gf256.ScaleSlice(row[pivot:rhs], gf256.Inv(pv))
		}
		aug[pivot] = row
		payloads[acc] = b.Payload
		acc++
	}
	if acc < n {
		return nil, fmt.Errorf("%w: rank %d of %d from %d blocks",
			ErrRankDeficient, acc, n, len(blocks))
	}

	// Deferred back-substitution, bottom-up: every pivot row below the
	// current one is already final ([e_c | row c of C⁻¹]), and pivot row c is
	// zero left of column c, so a descending quadruple's factors can be read
	// up front and every operand sliced to the quadruple's lowest column.
	for r := n - 1; r >= 0; r-- {
		row := aug[r]
		c := n - 1
		for ; c-3 > r; c -= 4 {
			f1, f2, f3, f4 := row[c], row[c-1], row[c-2], row[c-3]
			if f1|f2|f3|f4 == 0 {
				continue
			}
			lo := c - 3
			gf256.MulAddSlice4(row[lo:], aug[c][lo:], aug[c-1][lo:], aug[c-2][lo:], aug[c-3][lo:],
				f1, f2, f3, f4)
		}
		for ; c > r; c-- {
			if f := row[c]; f != 0 {
				gf256.MulAddSlice(row[c:], aug[c][c:], f)
			}
		}
	}
	return aug, nil
}
