package rlnc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

func testSegment(t testing.TB, id uint32, p Params, seed int64) *Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(id, p, data)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestSystematicCyclePhases walks one full emission cycle and checks each
// phase's invariants: verbatim unit-vector sources, ≥2-bit GF(2) repair
// bitmasks with pure-XOR payloads, all-nonzero dense tails, then a restart.
func TestSystematicCyclePhases(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 96}
	seg := testSegment(t, 7, p, 140)
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(141)), WithXorRepair(5), WithDenseTail(3))

	n := p.BlockCount
	// Phase 1: n verbatim source blocks.
	for i := 0; i < n; i++ {
		if got := se.SystematicRemaining(); got != n-i {
			t.Fatalf("block %d: SystematicRemaining = %d, want %d", i, got, n-i)
		}
		b := se.Block()
		if !bytes.Equal(b.Payload, seg.Block(i)) {
			t.Fatalf("systematic block %d payload differs from source", i)
		}
		for c, v := range b.Coeffs {
			want := byte(0)
			if c == i {
				want = 1
			}
			if v != want {
				t.Fatalf("systematic block %d coeff %d = %d", i, c, v)
			}
		}
	}
	// Phase 2: GF(2) repair — binary, ≥2 sources, payload = XOR of selection.
	for i := 0; i < se.XorRepair(); i++ {
		b := se.Block()
		if !b.IsBinary() {
			t.Fatalf("xor repair block %d is not binary", i)
		}
		bits := 0
		for _, v := range b.Coeffs {
			bits += int(v)
		}
		if bits < 2 {
			t.Fatalf("xor repair block %d selects %d sources, want ≥ 2", i, bits)
		}
		if !consistentWithSource(seg, b) {
			t.Fatalf("xor repair block %d payload is not the claimed XOR", i)
		}
	}
	// Phase 3: dense tail — every coefficient nonzero.
	for i := 0; i < se.DenseTail(); i++ {
		b := se.Block()
		for c, v := range b.Coeffs {
			if v == 0 {
				t.Fatalf("dense tail block %d has zero coeff at %d", i, c)
			}
		}
		if !consistentWithSource(seg, b) {
			t.Fatalf("dense tail block %d inconsistent", i)
		}
	}
	// Cycle restarts at the systematic sweep.
	if got := se.SystematicRemaining(); got != n {
		t.Fatalf("after full cycle SystematicRemaining = %d, want %d", got, n)
	}
	b := se.Block()
	if !bytes.Equal(b.Payload, seg.Block(0)) || b.Coeffs[0] != 1 {
		t.Fatal("cycle restart did not re-emit source block 0")
	}
}

// TestSystematicBlockZeroAlloc pins the zero-allocation guarantee of the
// non-retaining emit path across all three phases of the cycle.
func TestSystematicBlockZeroAlloc(t *testing.T) {
	p := Params{BlockCount: 32, BlockSize: 256}
	seg := testSegment(t, 3, p, 142)
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(143)))
	cycle := p.BlockCount + se.XorRepair() + se.DenseTail()
	// Warm up one full cycle (lazy caches, e.g. seg.Blocks()).
	for i := 0; i < cycle; i++ {
		se.Block()
	}
	if avg := testing.AllocsPerRun(3*cycle, func() { _ = se.Block() }); avg != 0 {
		t.Fatalf("SystematicEncoder.Block allocates %.2f per emit, want 0", avg)
	}
}

// TestXorWireRoundTrip: MarshalBinaryXor/UnmarshalBinaryXor round-trips
// systematic and repair blocks across byte-aligned and ragged block counts.
func TestXorWireRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 12, 64, 65} {
		p := Params{BlockCount: n, BlockSize: 48}
		seg := testSegment(t, 11, p, int64(150+n))
		se := NewSystematicEncoder(seg, rand.New(rand.NewSource(int64(151+n))), WithXorRepair(3), WithDenseTail(0))
		for i := 0; i < n+3; i++ {
			b := se.Block()
			wire, err := b.MarshalBinaryXor()
			if err != nil {
				t.Fatalf("n=%d block %d: %v", n, i, err)
			}
			if len(wire) != XorWireSize(p) {
				t.Fatalf("n=%d: wire is %d bytes, XorWireSize says %d", n, len(wire), XorWireSize(p))
			}
			var back CodedBlock
			if err := back.UnmarshalBinaryXor(wire); err != nil {
				t.Fatalf("n=%d block %d: %v", n, i, err)
			}
			if back.SegmentID != b.SegmentID || !bytes.Equal(back.Coeffs, b.Coeffs) || !bytes.Equal(back.Payload, b.Payload) {
				t.Fatalf("n=%d block %d: round trip differs", n, i)
			}
			// The dispatcher must route XNC2 records identically.
			var disp CodedBlock
			if err := disp.UnmarshalRecord(wire); err != nil {
				t.Fatalf("n=%d UnmarshalRecord: %v", n, err)
			}
			if !bytes.Equal(disp.Coeffs, b.Coeffs) {
				t.Fatalf("n=%d: UnmarshalRecord dispatch differs", n)
			}
		}
	}
}

// TestXorWireRejectsDense: the GF(2) encoding refuses non-binary blocks.
func TestXorWireRejectsDense(t *testing.T) {
	p := Params{BlockCount: 8, BlockSize: 32}
	seg := testSegment(t, 1, p, 160)
	enc := NewEncoder(seg, rand.New(rand.NewSource(161)))
	b := enc.NextBlock()
	if b.IsBinary() {
		t.Skip("dense draw happened to be binary")
	}
	if _, err := b.MarshalBinaryXor(); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("MarshalBinaryXor on dense block: %v, want ErrNotBinary", err)
	}
}

// TestXorWireHostileBitmask: a record with bits set beyond the block count —
// but a valid checksum — must be rejected, not silently truncated: otherwise
// two distinct wire records could alias one logical block.
func TestXorWireHostileBitmask(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 48} // n%8 != 0 → 4 trailing bits
	seg := testSegment(t, 5, p, 162)
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(163)))
	wire, err := se.Block().MarshalBinaryXor()
	if err != nil {
		t.Fatal(err)
	}
	hostile := rehashXorWire(append([]byte(nil), wire...), func(w []byte) {
		m := BitmaskLen(p.BlockCount)
		w[wireHeaderLen+m-1] |= 1 << 7 // bit 15 of a 12-block mask
	})
	var blk CodedBlock
	if err := blk.UnmarshalBinaryXor(hostile); !errors.Is(err, ErrBadBitmask) {
		t.Fatalf("hostile trailing bit: %v, want ErrBadBitmask", err)
	}

	// Corruption without rehashing fails the checksum first.
	flipped := append([]byte(nil), wire...)
	flipped[wireHeaderLen] ^= 0xFF
	if err := blk.UnmarshalBinaryXor(flipped); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("bit flip: %v, want ErrBadChecksum", err)
	}

	// Truncation is detected before any field is trusted.
	if err := blk.UnmarshalBinaryXor(wire[:len(wire)-5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record: %v, want ErrTruncated", err)
	}
}

// rehashXorWire applies mutate and recomputes the trailing CRC so the record
// is checksum-valid but semantically hostile.
func rehashXorWire(w []byte, mutate func([]byte)) []byte {
	mutate(w)
	sum := crc32.ChecksumIEEE(w[:len(w)-wireTrailerLen])
	binary.BigEndian.PutUint32(w[len(w)-wireTrailerLen:], sum)
	return w
}

// TestSystematicXorVsDenseDifferential: a systematic+XOR session and a dense
// session over the same lossy, shuffled channel recover byte-identical
// segments, and the systematic decoder stays on the XOR fast path until its
// first dense-tail block.
func TestSystematicXorVsDenseDifferential(t *testing.T) {
	for _, seed := range []int64{170, 171, 172} {
		p := Params{BlockCount: 24, BlockSize: 96}
		seg := testSegment(t, 9, p, seed)
		rng := rand.New(rand.NewSource(seed + 1000))

		// Channel: drop every 7th block, shuffle within a sliding window of 5.
		channel := func(emit func() *CodedBlock, count int) []*CodedBlock {
			var out []*CodedBlock
			for i := 0; i < count; i++ {
				b := emit().Clone()
				if i%7 == 3 {
					continue // lost
				}
				out = append(out, b)
			}
			for i := range out {
				j := i + rng.Intn(min(5, len(out)-i))
				out[i], out[j] = out[j], out[i]
			}
			return out
		}

		se := NewSystematicEncoder(seg, rand.New(rand.NewSource(seed+1)))
		de := NewEncoder(seg, rand.New(rand.NewSource(seed+2)))
		sysBlocks := channel(se.Block, 3*p.BlockCount)
		denseBlocks := channel(func() *CodedBlock { return de.NextBlock() }, 3*p.BlockCount)

		decode := func(blocks []*CodedBlock, wantFastPath bool) *Segment {
			d, err := NewDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			sawDense := false
			for _, b := range blocks {
				if !b.IsBinary() {
					sawDense = true
				}
				if _, err := d.AddBlock(b); err != nil {
					t.Fatal(err)
				}
				if wantFastPath && d.xorOnly != !sawDense {
					t.Fatalf("seed %d: xorOnly=%v after sawDense=%v", seed, d.xorOnly, sawDense)
				}
				if d.Ready() {
					break
				}
			}
			if !d.Ready() {
				t.Fatalf("seed %d: stream of %d blocks did not reach full rank", seed, len(blocks))
			}
			s, err := d.Segment()
			if err != nil {
				t.Fatal(err)
			}
			return s
		}

		sysSeg := decode(sysBlocks, true)
		denseSeg := decode(denseBlocks, false)
		if !sysSeg.Equal(seg) || !denseSeg.Equal(seg) {
			t.Fatalf("seed %d: recovered segment differs from source", seed)
		}
		if !sysSeg.Equal(denseSeg) {
			t.Fatalf("seed %d: systematic and dense sessions disagree", seed)
		}
	}
}

// TestXorFastPathDenseFallbackBoundary: binary blocks carry the decoder to
// rank n−1 on the fast path; the single dense-fallback block closes the last
// rank and drops the decoder into the general machinery — the boundary the
// dense tail exists for.
func TestXorFastPathDenseFallbackBoundary(t *testing.T) {
	p := Params{BlockCount: 16, BlockSize: 64}
	seg := testSegment(t, 13, p, 180)
	d, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(181)))
	// Absorb all but the last systematic block: rank n−1, pure fast path.
	for i := 0; i < p.BlockCount-1; i++ {
		innovative, err := d.AddBlock(se.Block())
		if err != nil {
			t.Fatal(err)
		}
		if !innovative {
			t.Fatalf("systematic block %d not innovative", i)
		}
	}
	if d.Rank() != p.BlockCount-1 || !d.xorOnly {
		t.Fatalf("rank=%d xorOnly=%v before fallback, want n-1/true", d.Rank(), d.xorOnly)
	}
	// A dense block closes the final rank with probability 255/256; emit one
	// directly (zero-free coefficients guarantee it covers the missing pivot).
	enc := NewEncoder(seg, rand.New(rand.NewSource(182)))
	b := enc.NextBlock()
	if b.IsBinary() {
		t.Fatal("dense draw is binary; pick another seed")
	}
	innovative, err := d.AddBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if !innovative || !d.Ready() {
		t.Fatalf("dense fallback: innovative=%v ready=%v", innovative, d.Ready())
	}
	if d.xorOnly {
		t.Fatal("dense block left xorOnly set")
	}
	got, err := d.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("boundary decode differs from source")
	}
}

// TestXorFastPathBatchedAbsorb: AddBlocks routes all-binary batches through
// the per-row XOR path and mixed batches through the fused machinery, with
// byte-identical results.
func TestXorFastPathBatchedAbsorb(t *testing.T) {
	p := Params{BlockCount: 20, BlockSize: 80}
	seg := testSegment(t, 17, p, 190)
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(191)))
	enc := NewEncoder(seg, rand.New(rand.NewSource(192)))

	var binaries []*CodedBlock
	for i := 0; i < p.BlockCount/2; i++ {
		binaries = append(binaries, se.Block().Clone())
	}
	mixed := []*CodedBlock{se.Block().Clone(), enc.NextBlock(), se.Block().Clone()}

	batched, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.AddBlocks(binaries); err != nil {
		t.Fatal(err)
	}
	if !batched.xorOnly {
		t.Fatal("all-binary batch cleared xorOnly")
	}
	if _, err := batched.AddBlocks(mixed); err != nil {
		t.Fatal(err)
	}
	if batched.xorOnly {
		t.Fatal("mixed batch left xorOnly set")
	}
	for _, b := range append(append([]*CodedBlock(nil), binaries...), mixed...) {
		if _, err := serial.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Rank() != serial.Rank() {
		t.Fatalf("batched rank %d != serial rank %d", batched.Rank(), serial.Rank())
	}
	for c := 0; c < p.BlockCount; c++ {
		br, sr := batched.rowForPivot[c], serial.rowForPivot[c]
		if (br == nil) != (sr == nil) {
			t.Fatalf("pivot %d presence differs", c)
		}
		if br != nil && !bytes.Equal(br, sr) {
			t.Fatalf("pivot %d row differs between batched and serial absorb", c)
		}
	}
}

// TestDecoderStateXorOnlyRoundTrip: serializing mid-decode and restoring
// recomputes the fast-path gate from the stored rows.
func TestDecoderStateXorOnlyRoundTrip(t *testing.T) {
	p := Params{BlockCount: 12, BlockSize: 32}
	seg := testSegment(t, 21, p, 200)
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(201)))

	d, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount/2; i++ {
		if _, err := d.AddBlock(se.Block()); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Decoder
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !back.xorOnly {
		t.Fatal("restored binary-row decoder lost the fast path")
	}

	// Absorb a dense block, re-serialize: the restored decoder must stay off
	// the fast path because its rows now hold GF(2^8) values.
	enc := NewEncoder(seg, rand.New(rand.NewSource(202)))
	if _, err := d.AddBlock(enc.NextBlock()); err != nil {
		t.Fatal(err)
	}
	blob, err = d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.xorOnly {
		t.Fatal("restored dense-row decoder claims the fast path")
	}
}
