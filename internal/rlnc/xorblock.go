package rlnc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// GF(2) (XOR-repair) wire encoding: the systematic fast path's packet shape.
// When every coefficient is 0 or 1 the vector is a bitmask, so the n-byte
// coefficient header of a dense block shrinks to ceil(n/8) bits and the
// payload is a pure XOR of the selected source blocks — no GF(2^8) arithmetic
// anywhere between encoder and decoder ("Balanced XOR-ed Coding", PAPERS.md).
//
// Wire format (all integers big-endian):
//
//	offset         size       field
//	0              4          magic "XNC2"
//	4              4          segment ID
//	8              4          block count n
//	12             4          block size k
//	16             ceil(n/8)  coefficient bitmask (bit i ⇒ byte i/8, 1<<(i%8),
//	                          the pivot-bitmap convention of decoderstate.go)
//	16+m           k          coded payload
//	16+m+k         4          CRC-32 (IEEE) over everything above
//
// Bits at positions ≥ n in the final mask byte must be zero: a checksummed
// record with stray trailing bits is rejected as hostile (ErrBadBitmask), so
// two distinct wire records can never alias one logical block.
const xorWireMagic = "XNC2"

// Errors of the GF(2) wire encoding.
var (
	// ErrNotBinary reports a MarshalBinaryXor call on a block whose
	// coefficients are not all 0 or 1.
	ErrNotBinary = errors.New("rlnc: coefficients are not GF(2)")
	// ErrBadBitmask reports a bitmask with bits set beyond the block count.
	ErrBadBitmask = errors.New("rlnc: xor-block bitmask has bits beyond block count")
)

// BitmaskLen returns ceil(n/8), the wire size of a GF(2) coefficient vector.
func BitmaskLen(n int) int { return (n + 7) / 8 }

// XorWireSize returns the marshaled length of a GF(2) coded block for p.
func XorWireSize(p Params) int {
	return wireHeaderLen + BitmaskLen(p.BlockCount) + p.BlockSize + wireTrailerLen
}

// IsBinary reports whether every coefficient is 0 or 1, i.e. whether the
// block is eligible for the GF(2) wire encoding and the decoder's XOR-only
// elimination fast path. Systematic source blocks (unit vectors) and XOR
// repair blocks are binary; dense-tail blocks are not.
func (b *CodedBlock) IsBinary() bool {
	for _, c := range b.Coeffs {
		if c > 1 {
			return false
		}
	}
	return true
}

// MarshalBinaryXor encodes the block in the GF(2) wire format above. It
// fails with ErrNotBinary when any coefficient exceeds 1 — the caller
// chooses the encoding per block (see netio's systematic mode).
func (b *CodedBlock) MarshalBinaryXor() ([]byte, error) {
	if err := b.Params().Validate(); err != nil {
		return nil, err
	}
	if !b.IsBinary() {
		return nil, ErrNotBinary
	}
	n := len(b.Coeffs)
	m := BitmaskLen(n)
	out := make([]byte, XorWireSize(b.Params()))
	copy(out, xorWireMagic)
	binary.BigEndian.PutUint32(out[4:], b.SegmentID)
	binary.BigEndian.PutUint32(out[8:], uint32(n))
	binary.BigEndian.PutUint32(out[12:], uint32(len(b.Payload)))
	mask := out[wireHeaderLen : wireHeaderLen+m]
	for i, c := range b.Coeffs {
		if c != 0 {
			mask[i/8] |= 1 << (i % 8)
		}
	}
	copy(out[wireHeaderLen+m:], b.Payload)
	sum := crc32.ChecksumIEEE(out[:len(out)-wireTrailerLen])
	binary.BigEndian.PutUint32(out[len(out)-wireTrailerLen:], sum)
	return out, nil
}

// UnmarshalBinaryXor decodes a GF(2) coded block, validating magic, lengths,
// checksum, and the trailing-bit invariant, expanding the bitmask back into
// a byte coefficient vector so the decoded block is interchangeable with a
// dense one.
func (b *CodedBlock) UnmarshalBinaryXor(data []byte) error {
	if len(data) < wireHeaderLen+wireTrailerLen {
		return ErrTruncated
	}
	if string(data[:4]) != xorWireMagic {
		return ErrBadMagic
	}
	n := int(binary.BigEndian.Uint32(data[8:]))
	k := int(binary.BigEndian.Uint32(data[12:]))
	p := Params{BlockCount: n, BlockSize: k}
	if err := p.Validate(); err != nil {
		return err
	}
	m := BitmaskLen(n)
	want := wireHeaderLen + m + k + wireTrailerLen
	if len(data) != want {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrTruncated, len(data), want)
	}
	sum := crc32.ChecksumIEEE(data[:len(data)-wireTrailerLen])
	if sum != binary.BigEndian.Uint32(data[len(data)-wireTrailerLen:]) {
		return ErrBadChecksum
	}
	mask := data[wireHeaderLen : wireHeaderLen+m]
	if n%8 != 0 && mask[m-1]>>(n%8) != 0 {
		return fmt.Errorf("%w: %d blocks, trailing byte %#x", ErrBadBitmask, n, mask[m-1])
	}
	b.SegmentID = binary.BigEndian.Uint32(data[4:])
	if cap(b.Coeffs) < n {
		b.Coeffs = make([]byte, n)
	}
	b.Coeffs = b.Coeffs[:n]
	for i := range b.Coeffs {
		b.Coeffs[i] = (mask[i/8] >> (i % 8)) & 1
	}
	b.Payload = append(b.Payload[:0], data[wireHeaderLen+m:wireHeaderLen+m+k]...)
	return nil
}

// UnmarshalRecord decodes either wire encoding, dispatching on the magic:
// "XNC1" dense, "XNC2" GF(2). It is the record parser of netio's systematic
// sessions, where both encodings interleave on one stream.
func (b *CodedBlock) UnmarshalRecord(data []byte) error {
	if len(data) >= 4 && string(data[:4]) == xorWireMagic {
		return b.UnmarshalBinaryXor(data)
	}
	return b.UnmarshalBinary(data)
}
