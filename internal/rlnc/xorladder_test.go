package rlnc

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkXorLadder measures the systematic + GF(2) fast path at the paper's
// streaming configuration (n=128, k=4096), in the ladder convention of
// BenchmarkEncode/BenchmarkDecodeLadder: throughput is source bytes through
// the kernel, so rungs are directly comparable with the dense GF(2^8) rungs
// they bypass (the acceptance bar is xor-repair-encode ≥ 3× the fused
// mulAddSlice4x2 rung of gf256's BenchmarkXorLadder at k=4096).
//
//	systematic-emit    — phase-1 emit: unit vector + aliased payload, no
//	                     arithmetic, no copy; the per-block fixed cost floor.
//	xor-repair-encode  — one GF(2) repair payload: XOR-fold of the selected
//	                     source blocks (half the segment, the expected mask
//	                     density) through XorSlice4/XorSlice.
//	xor-decode         — XOR-only progressive elimination to full rank from a
//	                     lossy systematic stream: the decoder fast path.
//	blended/loss=…     — whole-session recovery rate at simulated loss: lossy
//	                     systematic sweep + GF(2) repair + dense tail, decoded
//	                     to a full segment; bytes are recovered source bytes.
func BenchmarkXorLadder(b *testing.B) {
	p := Params{BlockCount: 128, BlockSize: 4096}
	rng := rand.New(rand.NewSource(61))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := SegmentFromData(1, p, data)
	if err != nil {
		b.Fatal(err)
	}
	n, k := p.BlockCount, p.BlockSize

	b.Run(fmt.Sprintf("systematic-emit/k=%d", k), func(b *testing.B) {
		se := NewSystematicEncoder(seg, rand.New(rand.NewSource(62)))
		b.SetBytes(int64(k))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if se.SystematicRemaining() == 0 {
				se.Reset()
			}
			_ = se.Block()
		}
	})

	b.Run(fmt.Sprintf("xor-repair-encode/k=%d", k), func(b *testing.B) {
		// Fixed half-dense mask: the expected density of a random GF(2)
		// repair vector, deterministic so every iteration folds the same
		// n/2 source blocks.
		mask := make([]byte, n)
		for i := 0; i < n; i += 2 {
			mask[i] = 1
		}
		payload := make([]byte, k)
		rows := seg.Blocks()
		b.SetBytes(int64(n / 2 * k))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			xorRowsInto(payload, rows, mask)
		}
	})

	// A lossy all-binary stream that spans the segment: systematic sweep with
	// every 16th block dropped, then GF(2) repairs until full rank.
	binStream := buildXorStream(b, seg, 16)
	b.Run(fmt.Sprintf("xor-decode/k=%d", k), func(b *testing.B) {
		b.SetBytes(int64(p.SegmentSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec, err := NewDecoder(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range binStream {
				if _, err := dec.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
				if dec.Ready() {
					break
				}
			}
			if !dec.Ready() || !dec.xorOnly {
				b.Fatalf("xor-decode rung left fast path: ready=%v xorOnly=%v", dec.Ready(), dec.xorOnly)
			}
		}
	})

	// Blended rate: full systematic+XOR session (encode already done once —
	// the stream is fixed) decoded under simulated random loss. The rate is
	// recovered source bytes per second at that loss.
	for _, loss := range []struct {
		name string
		prob float64
	}{{"0.1pct", 0.001}, {"1pct", 0.01}, {"5pct", 0.05}} {
		stream := buildBlendedStream(b, seg, loss.prob)
		b.Run("blended/loss="+loss.name, func(b *testing.B) {
			b.SetBytes(int64(p.SegmentSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := NewDecoder(p)
				if err != nil {
					b.Fatal(err)
				}
				for _, blk := range stream {
					if _, err := dec.AddBlock(blk); err != nil {
						b.Fatal(err)
					}
					if dec.Ready() {
						break
					}
				}
				if !dec.Ready() {
					b.Fatal("blended stream did not reach full rank")
				}
			}
		})
	}
}

// buildXorStream returns an all-binary arrival stream spanning seg: the
// systematic sweep with every dropEvery-th block lost, followed by GF(2)
// repair blocks. The stream is verified to decode on the XOR-only fast path.
func buildXorStream(b *testing.B, seg *Segment, dropEvery int) []*CodedBlock {
	b.Helper()
	p := seg.Params()
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(63)), WithXorRepair(4*p.BlockCount), WithDenseTail(0))
	probe, err := NewDecoder(p)
	if err != nil {
		b.Fatal(err)
	}
	var stream []*CodedBlock
	for i := 0; !probe.Ready(); i++ {
		if i > 16*p.BlockCount {
			b.Fatal("xor stream failed to span the segment")
		}
		blk := se.Block().Clone()
		if i < p.BlockCount && i%dropEvery == dropEvery-1 {
			continue // simulated loss in the systematic sweep
		}
		if _, err := probe.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
		stream = append(stream, blk)
	}
	if !probe.xorOnly {
		b.Fatal("xor stream is not all-binary")
	}
	return stream
}

// buildBlendedStream returns a systematic+XOR+dense session stream under
// random loss with probability prob, verified to decode to seg.
func buildBlendedStream(b *testing.B, seg *Segment, prob float64) []*CodedBlock {
	b.Helper()
	p := seg.Params()
	rng := rand.New(rand.NewSource(int64(64 + 1000*prob)))
	se := NewSystematicEncoder(seg, rand.New(rand.NewSource(65)))
	probe, err := NewDecoder(p)
	if err != nil {
		b.Fatal(err)
	}
	var stream []*CodedBlock
	for i := 0; !probe.Ready(); i++ {
		if i > 64*p.BlockCount {
			b.Fatal("blended stream failed to span the segment")
		}
		blk := se.Block().Clone()
		if rng.Float64() < prob {
			continue // lost in flight
		}
		if _, err := probe.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
		stream = append(stream, blk)
	}
	got, err := probe.Segment()
	if err != nil {
		b.Fatal(err)
	}
	if !got.Equal(seg) {
		b.Fatal("blended stream decodes corrupt segment")
	}
	return stream
}
