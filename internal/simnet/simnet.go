// Package simnet is a small deterministic discrete-event network simulator:
// a virtual-time scheduler plus point-to-point links with bandwidth,
// latency, and serialization. It is the substrate for the Avalanche-style
// content-distribution experiments (paper Secs. 2 and 5.2) — the deployment
// setting whose offline decoding workload motivates multi-segment decoding.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // FIFO tiebreak for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler executes events in virtual-time order. Events at the same
// instant run in scheduling order, so runs are deterministic.
type Scheduler struct {
	queue eventQueue
	now   float64
	seq   int64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Scheduler) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Step runs the next event; it reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until the queue drains, the virtual clock passes
// deadline, or stop returns true. It returns the number of events executed.
func (s *Scheduler) RunUntil(deadline float64, stop func() bool) int {
	executed := 0
	for s.queue.Len() > 0 {
		if s.queue[0].at > deadline {
			break
		}
		if stop != nil && stop() {
			break
		}
		s.Step()
		executed++
	}
	return executed
}

// Run drains the queue completely and returns the number of events executed.
func (s *Scheduler) Run() int { return s.RunUntil(maxFloat, nil) }

const maxFloat = 1.797693134862315708145274237317043567981e308

// Link is a serialized point-to-point channel: messages queue behind each
// other at the link bandwidth and arrive after the propagation latency.
// Optionally, SetLoss makes the link drop messages at random — dropped
// messages still occupy the wire for their transmission time, as on a real
// lossy channel.
type Link struct {
	sched *Scheduler

	BandwidthBps float64 // payload bits per second
	Latency      float64 // propagation delay, seconds

	lossRate float64
	lossRng  *rand.Rand

	busyUntil float64
	sent      int64
	sentBytes int64
	dropped   int64
}

// NewLink creates a link on the scheduler.
func NewLink(sched *Scheduler, bandwidthBps, latency float64) (*Link, error) {
	if bandwidthBps <= 0 {
		return nil, fmt.Errorf("simnet: bandwidth %g must be positive", bandwidthBps)
	}
	if latency < 0 {
		return nil, fmt.Errorf("simnet: latency %g must be non-negative", latency)
	}
	return &Link{sched: sched, BandwidthBps: bandwidthBps, Latency: latency}, nil
}

// SetLoss configures random message loss with the given probability,
// drawn from rng (which the caller seeds for determinism). A nil rng or a
// non-positive rate disables loss.
func (l *Link) SetLoss(rate float64, rng *rand.Rand) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("simnet: loss rate %g out of [0, 1)", rate)
	}
	l.lossRate = rate
	l.lossRng = rng
	return nil
}

// Send enqueues a message of size bytes; deliver runs at the receiver when
// the last bit arrives. It returns the delivery time.
func (l *Link) Send(size int, deliver func()) float64 {
	return l.SendWithLoss(size, deliver, nil)
}

// SendWithLoss is Send with a loss callback: when the link drops the
// message, lost runs (at the would-be arrival time) instead of deliver, so
// senders can keep their transmit loops going.
func (l *Link) SendWithLoss(size int, deliver, lost func()) float64 {
	start := l.sched.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	tx := float64(size) * 8 / l.BandwidthBps
	l.busyUntil = start + tx
	arrival := l.busyUntil + l.Latency

	l.sent++
	l.sentBytes += int64(size)
	if l.lossRate > 0 && l.lossRng != nil && l.lossRng.Float64() < l.lossRate {
		l.dropped++
		if lost != nil {
			l.sched.At(arrival, lost)
		}
		return arrival
	}
	l.sched.At(arrival, deliver)
	return arrival
}

// Dropped returns the number of messages the link has lost.
func (l *Link) Dropped() int64 { return l.dropped }

// Idle reports whether the link has no transmission in progress.
func (l *Link) Idle() bool { return l.busyUntil <= l.sched.Now() }

// NextFree returns when the link can begin a new transmission.
func (l *Link) NextFree() float64 {
	if l.busyUntil > l.sched.Now() {
		return l.busyUntil
	}
	return l.sched.Now()
}

// Sent returns the number of messages and payload bytes transmitted.
func (l *Link) Sent() (messages, bytes int64) { return l.sent, l.sentBytes }
