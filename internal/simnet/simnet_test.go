package simnet

import (
	"math/rand"
	"testing"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestSchedulerAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulerPastEventClamps(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(10, func() {
		s.At(5, func() { fired = true }) // in the past → runs now
	})
	s.Run()
	if !fired {
		t.Fatal("clamped event did not fire")
	}
	if s.Now() != 10 {
		t.Fatalf("time = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.RunUntil(5.5, nil)
	if count != 5 {
		t.Fatalf("executed %d events before deadline", count)
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Stop predicate.
	s.RunUntil(100, func() bool { return count >= 7 })
	if count != 7 {
		t.Fatalf("stop predicate ignored: count = %d", count)
	}
}

func TestLinkSerialization(t *testing.T) {
	s := NewScheduler()
	l, err := NewLink(s, 8000, 0.1) // 1000 bytes/s, 100 ms latency
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []float64
	record := func() { arrivals = append(arrivals, s.Now()) }
	// Two 500-byte messages: tx 0.5 s each, serialized.
	if at := l.Send(500, record); at != 0.6 {
		t.Fatalf("first arrival = %v, want 0.6", at)
	}
	if at := l.Send(500, record); at != 1.1 {
		t.Fatalf("second arrival = %v, want 1.1 (serialized)", at)
	}
	s.Run()
	if len(arrivals) != 2 || arrivals[0] != 0.6 || arrivals[1] != 1.1 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	msgs, bytes := l.Sent()
	if msgs != 2 || bytes != 1000 {
		t.Fatalf("sent = %d msgs %d bytes", msgs, bytes)
	}
}

func TestLinkIdleAndNextFree(t *testing.T) {
	s := NewScheduler()
	l, err := NewLink(s, 8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Idle() {
		t.Fatal("fresh link not idle")
	}
	l.Send(1000, func() {})
	if l.Idle() {
		t.Fatal("transmitting link reported idle")
	}
	if l.NextFree() != 1.0 {
		t.Fatalf("NextFree = %v", l.NextFree())
	}
	s.Run()
	if !l.Idle() {
		t.Fatal("drained link not idle")
	}
}

func TestLinkValidation(t *testing.T) {
	s := NewScheduler()
	if _, err := NewLink(s, 0, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(s, 100, -1); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestLinkLoss(t *testing.T) {
	s := NewScheduler()
	l, err := NewLink(s, 8e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetLoss(1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
	if err := l.SetLoss(0.5, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	delivered, lost := 0, 0
	for i := 0; i < 400; i++ {
		l.SendWithLoss(100, func() { delivered++ }, func() { lost++ })
	}
	s.Run()
	if delivered+lost != 400 {
		t.Fatalf("delivered %d + lost %d != 400", delivered, lost)
	}
	if int64(lost) != l.Dropped() {
		t.Fatalf("lost %d != Dropped %d", lost, l.Dropped())
	}
	if lost < 120 || lost > 280 {
		t.Fatalf("lost %d of 400 at rate 0.5", lost)
	}
	// Dropped messages still occupied the wire.
	if msgs, _ := l.Sent(); msgs != 400 {
		t.Fatalf("sent = %d", msgs)
	}
}

func TestLinkNoLossByDefault(t *testing.T) {
	s := NewScheduler()
	l, err := NewLink(s, 8e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 50; i++ {
		l.Send(10, func() { got++ })
	}
	s.Run()
	if got != 50 || l.Dropped() != 0 {
		t.Fatalf("delivered %d, dropped %d", got, l.Dropped())
	}
}
