package stream

import (
	"fmt"
	"math"

	"extremenc/internal/core"
)

// Playback modeling: the paper sizes its streaming scenario around client
// buffering ("each segment contains content that lasts 5.33 seconds, which
// is an acceptable buffering delay on the client side", Sec. 5.1.2). This
// file models what those numbers mean for viewers: how long start-up takes
// and whether playback ever stalls, as the peer population scales against
// the server's coding and NIC capacity.

// PlaybackConfig describes a live session to simulate.
type PlaybackConfig struct {
	Scenario core.StreamScenario

	// EncodeMBps is the server's coding bandwidth (e.g. a measured engine
	// rate).
	EncodeMBps float64

	// Peers is the concurrent viewer count.
	Peers int

	// SegmentCount is how much media to play.
	SegmentCount int

	// StartupSegments is how many segments a client buffers before
	// starting playback (default 1 — the paper's buffering delay).
	StartupSegments int
}

// Validate checks the configuration.
func (c PlaybackConfig) Validate() error {
	if err := c.Scenario.Params.Validate(); err != nil {
		return err
	}
	if c.EncodeMBps <= 0 {
		return fmt.Errorf("stream: encode rate must be positive")
	}
	if c.Peers <= 0 || c.SegmentCount <= 0 {
		return fmt.Errorf("stream: peers and segments must be positive")
	}
	return nil
}

// PlaybackMetrics reports the viewer experience.
type PlaybackMetrics struct {
	// PerPeerMBps is each viewer's fair share of the server's delivery
	// bandwidth (coding- or NIC-bound, whichever is tighter).
	PerPeerMBps float64
	// SegmentDeliverySeconds is how long one segment takes to reach a
	// viewer at that share.
	SegmentDeliverySeconds float64
	// StartupDelay is the buffering time before playback begins.
	StartupDelay float64
	// Rebuffers counts playback stalls over the session.
	Rebuffers int
	// StallSeconds is the total stalled time over the session.
	StallSeconds float64
	// Sustainable reports whether delivery keeps up with real time
	// (segment delivery ≤ segment duration).
	Sustainable bool
}

// SimulatePlayback runs the analytic delivery/playback model: the server's
// aggregate output (bounded by coding rate and NIC capacity) is shared
// fairly; each viewer buffers StartupSegments, then consumes one segment
// duration of media per segment while the next downloads. A stall occurs
// whenever a segment finishes downloading after its playback deadline.
func SimulatePlayback(cfg PlaybackConfig) (*PlaybackMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.Scenario
	nicMBps := float64(s.NICCount) * s.NICCapacityMBps
	aggregate := math.Min(cfg.EncodeMBps, nicMBps)
	perPeer := aggregate / float64(cfg.Peers)

	segBytes := float64(s.Params.SegmentSize())
	delivery := segBytes / (perPeer * 1e6)
	duration := s.SegmentDuration()

	startupSegs := cfg.StartupSegments
	if startupSegs <= 0 {
		startupSegs = 1
	}
	m := &PlaybackMetrics{
		PerPeerMBps:            perPeer,
		SegmentDeliverySeconds: delivery,
		StartupDelay:           float64(startupSegs) * delivery,
		Sustainable:            delivery <= duration,
	}

	// Walk the session: segment i finishes downloading at (i+1)·delivery;
	// playback needs it when the previously buffered media runs out, one
	// segment duration after the prior segment's deadline (stalls push
	// every later deadline back).
	nextDeadline := m.StartupDelay + duration // when segment startupSegs is needed
	for i := startupSegs; i < cfg.SegmentCount; i++ {
		arrive := float64(i+1) * delivery
		if arrive > nextDeadline {
			m.Rebuffers++
			m.StallSeconds += arrive - nextDeadline
			nextDeadline = arrive
		}
		nextDeadline += duration
	}
	return m, nil
}

// MaxSmoothPeers returns the largest viewer count with stall-free playback
// under the model: per-peer delivery must keep up with the media rate.
func MaxSmoothPeers(s core.StreamScenario, encodeMBps float64) int {
	nicMBps := float64(s.NICCount) * s.NICCapacityMBps
	aggregate := math.Min(encodeMBps, nicMBps)
	duration := s.SegmentDuration()
	if duration <= 0 {
		return 0
	}
	segBytes := float64(s.Params.SegmentSize())
	// delivery = segBytes / (aggregate/peers · 1e6) ≤ duration
	return int(aggregate * 1e6 * duration / segBytes)
}
