// Package stream implements the paper's target deployment: a media
// streaming server that keeps segments resident on the coding device and
// generates coded blocks for downstream peers (Secs. 5.1.1–5.1.2). It
// drives any core.Encoder — simulated GPU, simulated CPU, or the real host
// — through live and VoD workloads, reporting whether the engine keeps up
// with real time, how many peers it sustains, and how hard it loads the
// NICs. A sample client decodes real blocks every run, so served data is
// verified end to end.
package stream

import (
	"fmt"

	"extremenc/internal/core"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

// materializer is implemented by engines whose functional-block sample size
// can be tuned; the server raises it for the verification segment.
type materializer interface {
	SetMaterialize(n int)
}

// Server is a network-coded streaming server.
type Server struct {
	scenario core.StreamScenario
	encoder  core.Encoder
	object   *rlnc.Object

	// counters accumulate modeled serving traffic across runs in the same
	// vocabulary as the netio session server, so one observability surface
	// covers both the real-socket and the engine-driven serving paths.
	counters netio.Counters
}

// NewServer splits media into scenario-sized segments and prepares the
// engine. Media must be non-empty.
func NewServer(scenario core.StreamScenario, enc core.Encoder, media []byte) (*Server, error) {
	if len(media) == 0 {
		return nil, fmt.Errorf("stream: empty media")
	}
	if enc == nil {
		return nil, fmt.Errorf("stream: nil encoder")
	}
	obj, err := rlnc.Split(media, scenario.Params)
	if err != nil {
		return nil, err
	}
	return &Server{scenario: scenario, encoder: enc, object: obj}, nil
}

// Segments returns the number of media segments the server holds.
func (s *Server) Segments() int { return len(s.object.Segments) }

// Counters reports the server's cumulative serving traffic (across every
// ServeLive/ServeVoD run) as a netio counter view: blocks encoded by the
// engine and blocks/bytes offered to and delivered into the modeled peer
// streams.
func (s *Server) Counters() netio.CounterView { return s.counters.View() }

// RegisterMetrics attaches the server's serving counters to reg under
// prefix (conventionally "stream"), putting the engine-driven serving path
// on the same scrape as the socket server. Counters() stays a thin view
// over the same storage.
func (s *Server) RegisterMetrics(reg *obs.Registry, prefix string) error {
	return s.counters.Register(reg, prefix)
}

// account records one engine run's traffic in the shared counters.
func (s *Server) account(blocks int64) {
	s.counters.AddEncoded(blocks)
	s.counters.AddOffered(blocks)
	s.counters.AddSent(blocks, blocks*int64(s.scenario.Params.BlockSize))
}

// Metrics reports one serving run.
type Metrics struct {
	Engine     string
	EncodeMBps float64

	SegmentsServed   int
	BlocksPerSegment int
	BlocksTotal      int64

	PeersRequested int
	// PeersByCompute / PeersByNetwork / PeersServed are the scenario
	// capacities at the measured encode rate.
	PeersByCompute int
	PeersByNetwork int
	PeersServed    int

	// EncoderUtilization is the encode time per segment divided by the
	// segment's media duration: ≤ 1 means the engine keeps up live.
	EncoderUtilization float64
	RealTime           bool

	// NICUtilization is the requested peers' aggregate stream rate over
	// the NIC capacity.
	NICUtilization float64

	// SampleVerified reports that a sample client decoded a served segment
	// bit-exactly.
	SampleVerified bool
}

// ServeLive streams every segment to the requested peer population: each
// segment must yield peers×n coded blocks within its media duration (the
// paper's "at least 177,333 coded blocks from every video segment" at
// ≈1385 peers).
func (s *Server) ServeLive(peers int, seed int64) (*Metrics, error) {
	if peers <= 0 {
		return nil, fmt.Errorf("stream: peer count %d must be positive", peers)
	}
	n := s.scenario.Params.BlockCount
	blocksPerSegment := peers * n

	m := &Metrics{
		Engine:           s.encoder.Name(),
		SegmentsServed:   len(s.object.Segments),
		BlocksPerSegment: blocksPerSegment,
		PeersRequested:   peers,
	}

	var totalSeconds float64
	for i, seg := range s.object.Segments {
		rep, err := s.encoder.EncodeBlocks(seg, blocksPerSegment, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("stream: segment %d: %w", seg.ID(), err)
		}
		totalSeconds += rep.Seconds
		m.BlocksTotal += int64(blocksPerSegment)
		s.account(int64(blocksPerSegment))
	}
	totalBytes := m.BlocksTotal * int64(s.scenario.Params.BlockSize)
	if totalSeconds > 0 {
		m.EncodeMBps = float64(totalBytes) / totalSeconds / 1e6
	}

	duration := s.scenario.SegmentDuration()
	if duration > 0 {
		perSegment := totalSeconds / float64(len(s.object.Segments))
		m.EncoderUtilization = perSegment / duration
	}
	m.RealTime = m.EncoderUtilization <= 1

	m.PeersByCompute = s.scenario.PeersByCompute(m.EncodeMBps)
	m.PeersByNetwork = s.scenario.PeersByNetwork()
	m.PeersServed = s.scenario.PeersServed(m.EncodeMBps)
	m.NICUtilization = float64(peers) * s.scenario.StreamRateKbps * 1000 /
		(float64(s.scenario.NICCount) * s.scenario.NICCapacityMBps * 1e6 * 8)

	verified, err := s.verifySampleClient(seed ^ 0x5DEECE66D)
	if err != nil {
		return nil, err
	}
	m.SampleVerified = verified
	return m, nil
}

// ServeVoD serves clients that each request a different segment (the
// Sec. 5.1.3 VoD experiment: n coded blocks per request, preprocessing paid
// per segment).
func (s *Server) ServeVoD(clients int, seed int64) (*Metrics, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("stream: client count %d must be positive", clients)
	}
	n := s.scenario.Params.BlockCount
	m := &Metrics{
		Engine:           s.encoder.Name(),
		BlocksPerSegment: n,
		PeersRequested:   clients,
	}
	var totalSeconds float64
	for c := 0; c < clients; c++ {
		seg := s.object.Segments[c%len(s.object.Segments)]
		rep, err := s.encoder.EncodeBlocks(seg, n, seed+int64(c))
		if err != nil {
			return nil, fmt.Errorf("stream: client %d: %w", c, err)
		}
		totalSeconds += rep.Seconds
		m.BlocksTotal += int64(n)
		m.SegmentsServed++
		s.account(int64(n))
	}
	totalBytes := m.BlocksTotal * int64(s.scenario.Params.BlockSize)
	if totalSeconds > 0 {
		m.EncodeMBps = float64(totalBytes) / totalSeconds / 1e6
	}
	m.PeersByCompute = s.scenario.PeersByCompute(m.EncodeMBps)
	m.PeersByNetwork = s.scenario.PeersByNetwork()
	m.PeersServed = s.scenario.PeersServed(m.EncodeMBps)

	verified, err := s.verifySampleClient(seed ^ 0x2545F491)
	if err != nil {
		return nil, err
	}
	m.SampleVerified = verified
	return m, nil
}

// verifySampleClient plays one downstream peer: it obtains slightly more
// than n engine-produced coded blocks for segment 0 and decodes them,
// proving the serving path delivers decodable data.
func (s *Server) verifySampleClient(seed int64) (bool, error) {
	seg := s.object.Segments[0]
	n := s.scenario.Params.BlockCount

	if mt, ok := s.encoder.(materializer); ok {
		mt.SetMaterialize(n + 2)
		defer mt.SetMaterialize(0)
	}
	rep, err := s.encoder.EncodeBlocks(seg, n+2, seed)
	if err != nil {
		return false, fmt.Errorf("stream: sample client encode: %w", err)
	}
	if len(rep.Blocks) < n {
		return false, fmt.Errorf("stream: engine materialized %d blocks, need %d for verification", len(rep.Blocks), n)
	}
	dec, err := rlnc.NewDecoder(s.scenario.Params)
	if err != nil {
		return false, err
	}
	// The sample client holds its whole download, so the batched absorb path
	// eliminates all arrivals in one fused sweep.
	if _, err := dec.AddBlocks(rep.Blocks); err != nil {
		return false, err
	}
	got, err := dec.Segment()
	if err != nil {
		return false, fmt.Errorf("stream: sample client decode: %w", err)
	}
	if !got.Equal(seg) {
		return false, fmt.Errorf("stream: sample client decoded corrupt segment")
	}
	return true, nil
}
