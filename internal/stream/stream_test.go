package stream

import (
	"math/rand"
	"testing"

	"extremenc/internal/core"
	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// testScenario shrinks the paper scenario for fast tests while keeping the
// 768 Kbps stream rate.
func testScenario() core.StreamScenario {
	s := core.DefaultStreamScenario()
	s.Params = rlnc.Params{BlockCount: 16, BlockSize: 1024}
	return s
}

func testMedia(t testing.TB, bytes int) []byte {
	t.Helper()
	data := make([]byte, bytes)
	rand.New(rand.NewSource(7)).Read(data)
	return data
}

func gpuEncoder(t testing.TB) *core.GPUEncoder {
	t.Helper()
	enc, err := core.NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestNewServerValidation(t *testing.T) {
	s := testScenario()
	if _, err := NewServer(s, gpuEncoder(t), nil); err == nil {
		t.Fatal("empty media accepted")
	}
	if _, err := NewServer(s, nil, testMedia(t, 100)); err == nil {
		t.Fatal("nil encoder accepted")
	}
}

func TestServeLiveGPU(t *testing.T) {
	s := testScenario()
	srv, err := NewServer(s, gpuEncoder(t), testMedia(t, 3*s.Params.SegmentSize()-11))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Segments() != 3 {
		t.Fatalf("segments = %d", srv.Segments())
	}
	m, err := srv.ServeLive(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SampleVerified {
		t.Fatal("sample client verification failed")
	}
	if m.EncodeMBps <= 0 {
		t.Fatal("no encode rate")
	}
	if m.BlocksPerSegment != 200*s.Params.BlockCount {
		t.Fatalf("blocks per segment = %d", m.BlocksPerSegment)
	}
	if !m.RealTime {
		t.Errorf("GPU engine should keep up live at 200 peers (utilization %.3f)", m.EncoderUtilization)
	}
	if m.PeersServed <= 0 || m.PeersServed > m.PeersByNetwork {
		t.Fatalf("peers served = %d (network cap %d)", m.PeersServed, m.PeersByNetwork)
	}
	if m.NICUtilization <= 0 {
		t.Fatal("NIC utilization not computed")
	}
	if _, err := srv.ServeLive(0, 1); err == nil {
		t.Fatal("zero peers accepted")
	}
}

func TestServeLiveCPUSlower(t *testing.T) {
	s := testScenario()
	media := testMedia(t, s.Params.SegmentSize())
	gpuSrv, err := NewServer(s, gpuEncoder(t), media)
	if err != nil {
		t.Fatal(err)
	}
	cpuEnc, err := core.NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	if err != nil {
		t.Fatal(err)
	}
	cpuSrv, err := NewServer(s, cpuEnc, media)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpuSrv.ServeLive(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpuSrv.ServeLive(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.EncodeMBps <= c.EncodeMBps {
		t.Errorf("GPU %.1f MB/s not above CPU %.1f MB/s", g.EncodeMBps, c.EncodeMBps)
	}
	if g.PeersServed <= c.PeersServed && c.PeersServed < c.PeersByNetwork {
		t.Errorf("GPU peers %d not above CPU peers %d", g.PeersServed, c.PeersServed)
	}
}

func TestServeVoD(t *testing.T) {
	s := testScenario()
	srv, err := NewServer(s, gpuEncoder(t), testMedia(t, 4*s.Params.SegmentSize()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := srv.ServeVoD(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SampleVerified {
		t.Fatal("sample client verification failed")
	}
	if m.SegmentsServed != 10 || m.BlocksTotal != int64(10*s.Params.BlockCount) {
		t.Fatalf("VoD accounting: %d segments, %d blocks", m.SegmentsServed, m.BlocksTotal)
	}
	if _, err := srv.ServeVoD(0, 3); err == nil {
		t.Fatal("zero clients accepted")
	}
}

// TestPaperScenarioPeers reproduces the headline capacity numbers with the
// full-size scenario: a TB-5 GTX 280 sustains >3000 peers by compute and
// saturates ≥2 GigE NICs.
func TestPaperScenarioPeers(t *testing.T) {
	s := core.DefaultStreamScenario() // n=128, k=4096, 768 Kbps
	srv, err := NewServer(s, gpuEncoder(t), testMedia(t, s.Params.SegmentSize()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := srv.ServeLive(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeersByCompute <= 3000 {
		t.Errorf("compute peers = %d, want > 3000 at ≈294 MB/s", m.PeersByCompute)
	}
	if nics := s.NICsSaturated(m.EncodeMBps); nics < 2 {
		t.Errorf("NICs saturated = %.2f, want ≥ 2", nics)
	}
	if m.PeersServed != m.PeersByNetwork {
		t.Errorf("served should be NIC-bound: %d vs %d", m.PeersServed, m.PeersByNetwork)
	}
}

func TestSimulatePlaybackSmooth(t *testing.T) {
	s := core.DefaultStreamScenario()
	cfg := PlaybackConfig{
		Scenario:     s,
		EncodeMBps:   294, // TB-5
		Peers:        1000,
		SegmentCount: 20,
	}
	m, err := SimulatePlayback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sustainable || m.Rebuffers != 0 {
		t.Fatalf("1000 peers at 294 MB/s should be smooth: %+v", m)
	}
	// Startup delay ≈ one segment delivery, well under the 5.46 s of media
	// per segment.
	if m.StartupDelay <= 0 || m.StartupDelay > s.SegmentDuration() {
		t.Fatalf("startup delay = %.2f s", m.StartupDelay)
	}
}

func TestSimulatePlaybackOversubscribed(t *testing.T) {
	s := core.DefaultStreamScenario()
	limit := MaxSmoothPeers(s, 294)
	// The NIC binds at 294 MB/s: the smooth limit equals the network peers.
	if limit != s.PeersByNetwork() {
		t.Fatalf("smooth limit %d != network peers %d", limit, s.PeersByNetwork())
	}
	over, err := SimulatePlayback(PlaybackConfig{
		Scenario:     s,
		EncodeMBps:   294,
		Peers:        limit * 2,
		SegmentCount: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Sustainable || over.Rebuffers == 0 || over.StallSeconds <= 0 {
		t.Fatalf("2x oversubscription should stall: %+v", over)
	}
	at, err := SimulatePlayback(PlaybackConfig{
		Scenario:     s,
		EncodeMBps:   294,
		Peers:        limit,
		SegmentCount: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if at.Rebuffers != 0 {
		t.Fatalf("at the smooth limit playback should not stall: %+v", at)
	}
}

func TestSimulatePlaybackValidation(t *testing.T) {
	s := core.DefaultStreamScenario()
	if _, err := SimulatePlayback(PlaybackConfig{Scenario: s, EncodeMBps: 0, Peers: 1, SegmentCount: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := SimulatePlayback(PlaybackConfig{Scenario: s, EncodeMBps: 100, Peers: 0, SegmentCount: 1}); err == nil {
		t.Fatal("zero peers accepted")
	}
}
